#!/usr/bin/env python3
"""Blame analyzer for latency-anatomy run reports.

Consumes the nifdy-report-1 JSON written by `run_experiment --json`
or any bench's `--json` flag when the latency anatomy is enabled
(`--anatomy` / anatomy.enabled=true), and renders the per-cause
blame breakdown recorded under the "anatomy.*" metric names
(see DESIGN.md section 8).

A report carries one anatomy *group* per attributed run: the harness
writes bare `anatomy.cycles.<cause>` metrics, the benches one
`anatomy.<tag>.cycles.<cause>` set per topology/NIC pair.

Usage:
  analyze_latency.py report.json                 blame breakdown per
                                                 group + dominant
                                                 cause + per-node
                                                 outliers
  analyze_latency.py report.json --compare A B   blame *shift* between
                                                 two groups (e.g.
                                                 fattree.none vs
                                                 fattree.nifdy)
  analyze_latency.py report.json --baseline b.json
                                                 same-tag delta against
                                                 a second report
  analyze_latency.py report.json --check-conservation
                                                 verify that per-cause
                                                 cycles sum EXACTLY to
                                                 the end-to-end latency
                                                 in every group (CI
                                                 gate; exit 1 on any
                                                 leak or if no anatomy
                                                 data is present)

Exit status: 0 clean, 1 on conservation failure, missing anatomy
data, or unknown group tags.
"""

import argparse
import re
import sys

from reportlib import load_report

# Mirrors stallCauseSlugs / stallCauseLabels in src/sim/anatomy.hh
# (tools/lint.py keeps the enum and DESIGN.md in sync; this table is
# checked against the report keys at load time).
CAUSES = [
    ("swsend", "send staging"),
    ("ackwait", "ack wait"),
    ("optslot", "OPT slot busy"),
    ("optcap", "OPT cap"),
    ("window", "window closed"),
    ("inject", "inject backpressure"),
    ("arb", "router arb loss"),
    ("wire", "wire transit"),
    ("retx", "retx backoff"),
    ("epoch", "epoch recovery"),
    ("reorder", "reorder wait"),
    ("swrecv", "receive poll"),
    ("coll", "collective defer"),
]

GROUP_RE = re.compile(r"^anatomy\.(?:(?P<tag>.+)\.)?cycles\.total$")


class Group:
    """One attributed run: per-cause totals + end-to-end latency."""

    def __init__(self, tag, prefix, metrics):
        self.tag = tag or "(run)"
        self.total = int(metrics[prefix + "cycles.total"])
        self.latency = int(metrics.get(prefix + "latency.cycles", -1))
        self.packets = int(metrics.get(prefix + "packets", 0))
        self.discarded = int(metrics.get(prefix + "discarded", 0))
        self.cycles = {}
        for slug, _ in CAUSES:
            key = prefix + "cycles." + slug
            if key in metrics:
                self.cycles[slug] = int(metrics[key])

    def share(self, slug):
        return self.cycles.get(slug, 0) / self.total if self.total else 0.0

    def dominant(self):
        if not self.cycles:
            return None
        return max(self.cycles, key=self.cycles.get)

    def conservation_errors(self):
        errs = []
        if self.latency < 0:
            errs.append("latency.cycles metric missing")
        elif self.total != self.latency:
            errs.append(
                f"cycles.total {self.total} != latency.cycles "
                f"{self.latency} (leak {self.total - self.latency})")
        by_cause = sum(self.cycles.values())
        if len(self.cycles) == len(CAUSES) and by_cause != self.total:
            errs.append(
                f"sum of per-cause cycles {by_cause} != cycles.total "
                f"{self.total} (leak {by_cause - self.total})")
        missing = [s for s, _ in CAUSES if s not in self.cycles]
        if missing:
            errs.append("per-cause metrics missing: " + ", ".join(missing))
        return errs


def find_groups(report):
    metrics = report.get("metrics", {})
    groups = {}
    for key in sorted(metrics):
        m = GROUP_RE.match(key)
        if not m:
            continue
        tag = m.group("tag")
        prefix = "anatomy." + (tag + "." if tag else "")
        g = Group(tag, prefix, metrics)
        groups[g.tag] = g
    return groups


def fmt_cycles(n):
    return f"{n:,}"


def print_group(g, top):
    label = {s: l for s, l in CAUSES}
    print(f"== {g.tag}: {g.packets:,} packets, "
          f"{fmt_cycles(g.total)} cycles attributed"
          + (f", {g.discarded:,} lifecycles discarded" if g.discarded
             else "") + " ==")
    ranked = sorted(g.cycles.items(), key=lambda kv: -kv[1])
    shown = 0
    for slug, cyc in ranked:
        if shown >= top and cyc == 0:
            break
        mean = cyc / g.packets if g.packets else 0.0
        print(f"  {label[slug]:<20} {fmt_cycles(cyc):>14}  "
              f"{100.0 * g.share(slug):5.1f}%  {mean:10.1f}/pkt")
        shown += 1
        if shown >= top:
            break
    dom = g.dominant()
    if dom is not None:
        print(f"  dominant cause: {label[dom]} "
              f"({100.0 * g.share(dom):.1f}% of latency)")
    print()


def print_compare(a, b):
    """Blame shift from group a to group b, in share points."""
    label = {s: l for s, l in CAUSES}
    print(f"== blame shift: {a.tag} -> {b.tag} ==")
    print(f"  {'cause':<20} {a.tag:>12} {b.tag:>12} {'shift':>8}")
    rows = [(s, a.share(s), b.share(s)) for s, _ in CAUSES
            if a.cycles.get(s, 0) or b.cycles.get(s, 0)]
    rows.sort(key=lambda r: -(r[2] - r[1]))
    for slug, sa, sb in rows:
        print(f"  {label[slug]:<20} {100 * sa:11.1f}% {100 * sb:11.1f}% "
              f"{100 * (sb - sa):+7.1f}%")
    la = a.total / a.packets if a.packets else 0.0
    lb = b.total / b.packets if b.packets else 0.0
    print(f"  mean latency/pkt: {la:.1f} -> {lb:.1f} cycles "
          f"({'%+.1f' % (100.0 * (lb - la) / la) if la else 'n/a'}%)")
    print()


def node_outliers(report, count):
    """Worst per-node mean latencies from the 'latency blame by node'
    table (emitted by run_experiment reports)."""
    label = {s: l for s, l in CAUSES}
    for table in report.get("tables", []):
        if not table.get("title", "").startswith("latency blame by node"):
            continue
        cols = table["columns"]
        rows = []
        for raw in table["rows"]:
            row = dict(zip(cols, raw))
            pkts = int(row["pkts"].replace(",", ""))
            if not pkts:
                continue
            lat = int(row["latency"].replace(",", ""))
            causes = {s: int(row[s].replace(",", ""))
                      for s, _ in CAUSES if s in row}
            rows.append((lat / pkts, row["node"], pkts, causes))
        if not rows:
            continue
        rows.sort(reverse=True)
        fleet = sum(r[0] * r[2] for r in rows) / sum(r[2] for r in rows)
        print(f"== slowest source nodes ({table['title']}) ==")
        for mean, node, pkts, causes in rows[:count]:
            dom = max(causes, key=causes.get) if causes else "?"
            print(f"  node {node:>4}: {mean:8.1f} cycles/pkt "
                  f"({pkts:,} pkts, fleet mean {fleet:.1f}), "
                  f"mostly {label.get(dom, dom)}")
        print()


def main():
    ap = argparse.ArgumentParser(
        description="latency-anatomy blame analyzer "
                    "(nifdy-report-1 JSON)")
    ap.add_argument("report", help="report JSON path, or - for stdin")
    ap.add_argument("--check-conservation", action="store_true",
                    help="verify per-cause cycles sum exactly to the "
                         "end-to-end latency in every group")
    ap.add_argument("--compare", nargs=2, metavar=("TAG_A", "TAG_B"),
                    help="blame shift between two groups of the report")
    ap.add_argument("--baseline", metavar="REPORT",
                    help="second report: per-tag delta against it")
    ap.add_argument("--top", type=int, default=len(CAUSES),
                    help="causes to show per group (default: all)")
    ap.add_argument("--outliers", type=int, default=3,
                    help="slowest nodes to list (default 3; 0 = none)")
    args = ap.parse_args()

    report = load_report(args.report)
    groups = find_groups(report)
    if not groups:
        print("error: no anatomy metrics in report (run with "
              "--anatomy / anatomy.enabled=true)", file=sys.stderr)
        return 1

    if args.check_conservation:
        failures = 0
        packets = 0
        for tag, g in groups.items():
            packets += g.packets
            for err in g.conservation_errors():
                print(f"CONSERVATION VIOLATION [{tag}]: {err}",
                      file=sys.stderr)
                failures += 1
        if failures:
            return 1
        print(f"conservation OK: {len(groups)} group(s), "
              f"{packets:,} packets, every cycle accounted for")
        return 0

    if args.compare:
        missing = [t for t in args.compare if t not in groups]
        if missing:
            print("error: no such group(s): " + ", ".join(missing)
                  + "; available: " + ", ".join(sorted(groups)),
                  file=sys.stderr)
            return 1
        print_compare(groups[args.compare[0]], groups[args.compare[1]])
        return 0

    if args.baseline:
        base = find_groups(load_report(args.baseline))
        shared = [t for t in groups if t in base]
        if not shared:
            print("error: no shared anatomy groups with baseline",
                  file=sys.stderr)
            return 1
        for tag in shared:
            print_compare(base[tag], groups[tag])
        return 0

    for tag in sorted(groups):
        print_group(groups[tag], args.top)
    if args.outliers:
        node_outliers(report, args.outliers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
