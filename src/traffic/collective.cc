#include "traffic/collective.hh"

#include "sim/log.hh"

namespace nifdy
{

CollectiveWorkload::CollectiveWorkload(Processor &proc, MessageLayer &msg,
                                       Barrier &barrier, int numNodes,
                                       const CollectiveParams &params,
                                       std::uint64_t seed)
    : Workload(proc, msg, &barrier, seed), params_(params),
      numNodes_(numNodes),
      recvFrom_(static_cast<std::size_t>(numNodes), 0)
{
    panic_if(numNodes_ < 2, "collective traffic needs >= 2 nodes");
    panic_if(params_.phases < 1, "collective traffic needs >= 1 phase");
    panic_if(params_.arity < 1, "collective tree arity must be >= 1");
    panic_if(params_.dataMsgs > 0 && params_.dataMsgPackets < 2,
             "data messages must be >= 2 packets to stay "
             "distinguishable from single-packet collective signals");
}

CollOp
CollectiveWorkload::opFor(int phase) const
{
    if (!params_.rotateOps)
        return CollOp::barrier;
    switch (phase % 3) {
      case 0:
        return CollOp::barrier;
      case 1:
        return CollOp::bcast;
      default:
        return CollOp::reduce;
    }
}

std::int64_t
CollectiveWorkload::valueFor(int phase) const
{
    return static_cast<std::int64_t>(me() + 1) * 1000 + phase;
}

void
CollectiveWorkload::onReceive(const Packet &pkt, Cycle now)
{
    (void)now;
    // Collective signals are the only single-packet messages this
    // workload exchanges; data bursts are always longer.
    if (pkt.msgLen == 1)
        ++recvFrom_[static_cast<std::size_t>(pkt.src)];
}

void
CollectiveWorkload::tick(Cycle now)
{
    // A crashed-or-restarted node is a frozen free-runner: it never
    // re-enters the phase structure, and (offload mode) its NIC
    // engine keeps forwarding for the survivors without us. It must
    // still sink the network, though -- survivors keep aiming data
    // bursts at it, and a full arrivals FIFO would backpressure the
    // fabric into a wedge.
    if (barrier_->excused(me())) {
        pollNetwork(now);
        return;
    }
    if (done()) {
        pollNetwork(now); // drain stragglers for slower peers
        return;
    }
    if (receiveOne(now))
        return;
    if (msg_.pump(now))
        return;
    if (barrier_->offloaded())
        tickOffload(now);
    else
        tickSoftware(now);
}

/** Queue this phase's optional data burst; true if newly queued. */
bool
CollectiveWorkload::queueDataBurst()
{
    if (dataQueued_ || params_.dataMsgs <= 0)
        return false;
    dataQueued_ = true;
    int queued = 0;
    for (int m = 0; m < params_.dataMsgs; ++m) {
        // Next live peer, rotating with the phase so traffic spreads.
        NodeId dst = static_cast<NodeId>(
            (me() + 1 + phase_ + m) % numNodes_);
        for (int probe = 0; probe < numNodes_ - 1; ++probe) {
            if (dst != me() && !barrier_->excused(dst))
                break;
            dst = static_cast<NodeId>((dst + 1) % numNodes_);
        }
        if (dst == me() || barrier_->excused(dst))
            continue; // everyone else is gone
        msg_.enqueuePackets(dst, params_.dataMsgPackets,
                            NetClass::request);
        ++queued;
    }
    return queued > 0;
}

void
CollectiveWorkload::enterCollective(Cycle now)
{
    CollOp op = opFor(phase_);
    if (op == CollOp::barrier) {
        barrier_->arrive(me(), now);
        return;
    }
    CollEngine *eng = barrier_->engine(me());
    panic_if(!eng, "collective workload: offload tick with no engine");
    eng->enter(op, valueFor(phase_), now);
}

void
CollectiveWorkload::tickOffload(Cycle now)
{
    switch (state_) {
      case State::send:
        if (queueDataBurst())
            return; // pump drains it on later ticks
        if (!msg_.allSent()) {
            pollNetwork(now);
            return;
        }
        enterCollective(now);
        state_ = State::wait;
        return;
      case State::wait: {
        if (!barrier_->released(me(), now)) {
            pollNetwork(now);
            return;
        }
        CollEngine *eng = barrier_->engine(me());
        checksum_ = (checksum_ ^
                     (static_cast<std::uint64_t>(eng->lastResult()) +
                      0x9e3779b97f4a7c15ull +
                      static_cast<std::uint64_t>(phase_))) *
                    1099511628211ull;
        if (eng->lastDegraded())
            ++degradedSeen_;
        ++collectivesDone_;
        ++phase_;
        dataQueued_ = false;
        state_ = State::send;
        return;
      }
      default:
        panic("collective workload: software state %d in offload mode",
              static_cast<int>(state_));
    }
}

/**
 * Have all this phase's expected children contributed (or been
 * excused)? Cumulative counts: after phase p completes, each live
 * child has sent exactly p+1 single-packet messages our way.
 */
bool
CollectiveWorkload::childrenSatisfied() const
{
    NodeId first = collFirstChild(me(), params_.arity);
    int kids = collNumChildren(me(), params_.arity, numNodes_);
    for (int i = 0; i < kids; ++i) {
        NodeId c = static_cast<NodeId>(first + i);
        if (recvFrom(c) < phase_ + 1 && !barrier_->excused(c))
            return false;
    }
    return true;
}

/** Queue this phase's one-packet release to every live child. */
void
CollectiveWorkload::queueReleases()
{
    NodeId first = collFirstChild(me(), params_.arity);
    int kids = collNumChildren(me(), params_.arity, numNodes_);
    for (int i = 0; i < kids; ++i) {
        NodeId c = static_cast<NodeId>(first + i);
        if (!barrier_->excused(c))
            msg_.enqueuePackets(c, 1, NetClass::reply);
    }
}

void
CollectiveWorkload::tickSoftware(Cycle now)
{
    NodeId parent = collParent(me(), params_.arity);
    switch (state_) {
      case State::send:
        if (queueDataBurst())
            return;
        if (!msg_.allSent()) {
            pollNetwork(now);
            return;
        }
        state_ = State::gather;
        [[fallthrough]];
      case State::gather:
        if (!childrenSatisfied()) {
            pollNetwork(now);
            return;
        }
        if (parent == invalidNode) {
            // Root: the tree is in; release the survivors.
            queueReleases();
            state_ = State::releasePump;
        } else {
            msg_.enqueuePackets(parent, 1, NetClass::request);
            state_ = State::releaseWait;
        }
        return;
      case State::releaseWait:
        // An excused parent can never release us; its own parent (or
        // the root) will have completed without our subtree's chain,
        // so we self-release degraded rather than wedge.
        if (recvFrom(parent) < phase_ + 1 &&
            !barrier_->excused(parent)) {
            pollNetwork(now);
            return;
        }
        queueReleases();
        state_ = State::releasePump;
        return;
      case State::releasePump:
        if (!msg_.allSent()) {
            pollNetwork(now);
            return;
        }
        ++collectivesDone_;
        ++phase_;
        dataQueued_ = false;
        state_ = State::send;
        return;
      default:
        panic("collective workload: offload state %d in software mode",
              static_cast<int>(state_));
    }
}

} // namespace nifdy
