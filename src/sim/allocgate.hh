/**
 * @file
 * Debug-build heap allocation gate for the hot path.
 *
 * The determinism contract (DESIGN.md section 10) promises that the
 * post-warmup simulation loop allocates nothing: every hot-path
 * queue is a Ring that has grown to its high-water mark, every pool
 * has reached steady state. nifdylint checks that statically inside
 * NIFDY_HOT regions; the allocgate checks it dynamically.
 *
 * When the build carries -DNIFDY_ALLOCGATE (CMake option
 * NIFDY_ALLOCGATE), allocgate.cc replaces the global operator
 * new/delete family with counting versions. A test (or harness)
 * brackets the steady-state window:
 *
 *     allocgate::arm();
 *     kernel.run(window);
 *     auto n = allocgate::disarm();   // allocations in the window
 *
 * arm(Panic::onAlloc) additionally panics at the first allocation,
 * with the armed flag cleared first so the panic path itself may
 * allocate freely while formatting its message.
 *
 * Without the define every entry point compiles to a no-op and
 * available() returns false, so tests can skip cleanly.
 */

#ifndef NIFDY_SIM_ALLOCGATE_HH
#define NIFDY_SIM_ALLOCGATE_HH

#include <cstdint>

namespace nifdy
{
namespace allocgate
{

enum class Panic { never, onAlloc };

/** Is the counting operator new/delete interposer compiled in? */
bool available();

/** Begin counting heap allocations (process-wide). */
void arm(Panic mode = Panic::never);

/** Stop counting; @return allocations observed while armed. */
std::uint64_t disarm();

/** Allocations observed since arm() (live while armed). */
std::uint64_t allocs();

/** Deallocations observed since arm(). */
std::uint64_t frees();

/** Bytes requested by the observed allocations. */
std::uint64_t bytes();

} // namespace allocgate
} // namespace nifdy

#endif // NIFDY_SIM_ALLOCGATE_HH
