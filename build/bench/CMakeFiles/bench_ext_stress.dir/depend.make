# Empty dependencies file for bench_ext_stress.
# This may be replaced when dependencies are built.
