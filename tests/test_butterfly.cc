/**
 * @file
 * Butterfly / multibutterfly topology tests: wiring balance,
 * all-pairs delivery, in-order property of the dilation-1
 * butterfly, and path diversity of the dilation-2 multibutterfly.
 */

#include <gtest/gtest.h>

#include "net/butterfly.hh"
#include "netharness.hh"

namespace nifdy
{
namespace
{

TEST(Butterfly, Structure)
{
    NetworkParams np;
    np.numNodes = 64;
    auto net = makeNetwork("butterfly", np);
    auto *bf = dynamic_cast<ButterflyNetwork *>(net.get());
    ASSERT_NE(bf, nullptr);
    EXPECT_EQ(bf->stages(), 3);
    EXPECT_EQ(bf->dilation(), 1);
    EXPECT_EQ(bf->numRouters(), 48);
    EXPECT_EQ(bf->distance(0, 63), 3);
}

TEST(Butterfly, MultibutterflyStructure)
{
    NetworkParams np;
    np.numNodes = 64;
    auto net = makeNetwork("multibutterfly", np);
    auto *bf = dynamic_cast<ButterflyNetwork *>(net.get());
    ASSERT_NE(bf, nullptr);
    EXPECT_EQ(bf->dilation(), 2);
}

TEST(Butterfly, RouteDigits)
{
    NetworkParams np;
    np.numNodes = 64;
    ButterflyNetwork net([&] {
        np.radix = 4;
        return np;
    }());
    // dst 0b...: stage 0 uses the most significant base-4 digit.
    EXPECT_EQ(net.routeDigit(63, 0), 3);
    EXPECT_EQ(net.routeDigit(63, 2), 3);
    EXPECT_EQ(net.routeDigit(16, 0), 1);
    EXPECT_EQ(net.routeDigit(16, 1), 0);
    EXPECT_EQ(net.routeDigit(7, 1), 1);
    EXPECT_EQ(net.routeDigit(7, 2), 3);
}

TEST(Butterfly, WrongSizeRejected)
{
    NetworkParams np;
    np.numNodes = 48;
    EXPECT_THROW(makeNetwork("butterfly", np), std::runtime_error);
}

TEST(Butterfly, AllPairsDelivery)
{
    NetworkParams np;
    np.numNodes = 16;
    NetHarness h("butterfly", np);
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId d = 0; d < 16; ++d)
            h.send(s, d); // self-sends cross the network too
    h.runUntilQuiet();
    for (NodeId d = 0; d < 16; ++d)
        EXPECT_EQ(h.drainCount(d), 16) << "node " << d;
    EXPECT_EQ(h.pool.live(), 0u);
}

TEST(Butterfly, AllPairsDelivery64)
{
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("butterfly", np);
    for (NodeId s = 0; s < 64; ++s)
        for (int k = 1; k <= 8; ++k)
            h.send(s, (s * 5 + k * 11) % 64);
    h.runUntilQuiet(4000000);
    int total = 0;
    for (NodeId d = 0; d < 64; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 64 * 8);
}

TEST(Multibutterfly, AllPairsDelivery)
{
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("multibutterfly", np);
    for (NodeId s = 0; s < 64; ++s)
        for (NodeId d = 0; d < 64; d += 7)
            if (s != d)
                h.send(s, d);
    h.runUntilQuiet(4000000);
    int total = 0;
    for (NodeId d = 0; d < 64; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 64 * 10 - 10);
    EXPECT_EQ(h.pool.live(), 0u);
}

TEST(Butterfly, Dilation1KeepsOrder)
{
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("butterfly", np);
    std::vector<Packet *> sent;
    for (int i = 0; i < 30; ++i)
        sent.push_back(h.send(5, 42));
    h.runUntilQuiet();
    auto got = h.collect(42);
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], sent[i]);
    for (Packet *p : got)
        h.pool.release(p);
}

TEST(Multibutterfly, UsesBothDilatedChannels)
{
    // Saturating one source/destination pair must exercise more
    // stage-1 routers than the dilation-1 butterfly would.
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("multibutterfly", np);
    for (int i = 0; i < 60; ++i)
        h.send(3, 60);
    h.runUntilQuiet(4000000);
    EXPECT_EQ(h.drainCount(60), 60);
    // Stage-1 routers have ids 16..31.
    int used = 0;
    for (int r = 16; r < 32; ++r)
        used += h.net->router(r).flitsSwitched() > 0 ? 1 : 0;
    EXPECT_GE(used, 2);
}

TEST(Butterfly, TinyRadixNetworkWorks)
{
    NetworkParams np;
    np.numNodes = 4;
    NetHarness h("butterfly", np);
    for (NodeId s = 0; s < 4; ++s)
        for (NodeId d = 0; d < 4; ++d)
            if (s != d)
                h.send(s, d);
    h.runUntilQuiet();
    int total = 0;
    for (NodeId d = 0; d < 4; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 12);
}

} // namespace
} // namespace nifdy
