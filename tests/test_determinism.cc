/**
 * @file
 * The determinism contract, enforced end to end (DESIGN.md section
 * 10): the same config run twice in one process -- fresh kernels,
 * fresh pools, different heap layout the second time around -- must
 * produce byte-identical nifdy-report-1 JSON; and once warmed up,
 * the hot loop must not allocate (checked when the build carries
 * NIFDY_ALLOCGATE; skipped otherwise).
 *
 * The CI determinism job is the cross-process complement: it runs
 * the same configs under different ASLR seeds and diffs the report
 * files. This fixture catches the same class of bug (behavior keyed
 * on pointer values, container iteration order, or leftover global
 * state) without leaving the test binary.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/allocgate.hh"
#include "sim/config.hh"
#include "sim/report.hh"
#include "traffic/synthetic.hh"

namespace nifdy
{
namespace
{

/** Build, run, and serialize one experiment from key=value pairs. */
std::string
runOnce(const Config &conf, Cycle cycles)
{
    ExperimentConfig cfg = experimentFromConfig(conf);
    Experiment exp(cfg);
    SyntheticParams sp = SyntheticParams::heavy();
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<SyntheticWorkload>(
                               exp.proc(n), exp.msg(n), exp.barrier(),
                               exp.numNodes(), sp, cfg.seed));
    exp.runFor(cycles);
    RunReport rep("test_determinism");
    rep.echoConfig(conf);
    exp.fillReport(rep);
    return rep.json();
}

Config
fig2StyleConfig()
{
    // The bench_fig2_heavy shape, shrunk to unit-test size: heavy
    // synthetic traffic through the best-parameter NIFDY unit.
    Config conf;
    conf.set("topology", std::string("fattree"));
    conf.set("nodes", 16L);
    conf.set("nic", std::string("nifdy"));
    conf.set("seed", 3L);
    return conf;
}

Config
faultyConfig()
{
    // 5% fabric drops through the lossy NIC with the full invariant
    // audit attached: the config whose stability the CI determinism
    // gate certifies across ASLR seeds.
    Config conf = fig2StyleConfig();
    conf.set("nic", std::string("nifdy-lossy"));
    conf.set("fault.dropProb", 0.05);
    conf.set("audit", true);
    return conf;
}

TEST(Determinism, Fig2StyleDoubleRunByteIdentical)
{
    const std::string first = runOnce(fig2StyleConfig(), 20000);
    const std::string second = runOnce(fig2StyleConfig(), 20000);
    EXPECT_EQ(first, second)
        << "identical configs produced different reports: behavior "
           "depends on heap layout, iteration order, or leftover "
           "global state";
}

TEST(Determinism, FaultInjectedAuditedDoubleRunByteIdentical)
{
    const std::string first = runOnce(faultyConfig(), 20000);
    const std::string second = runOnce(faultyConfig(), 20000);
    EXPECT_EQ(first, second);
}

TEST(Determinism, ReportsCarryTheStableSchema)
{
    const std::string json = runOnce(fig2StyleConfig(), 2000);
    EXPECT_NE(json.find("\"schema\":\"nifdy-report-1\""),
              std::string::npos);
}

/**
 * The runtime half of the hot-path allocation discipline: after
 * warmup, a full steady-state window of the fig2 heavy config must
 * execute without a single heap allocation. Requires the counting
 * operator new/delete interposer (cmake -DNIFDY_ALLOCGATE=ON).
 */
TEST(Allocgate, SteadyStateHotLoopDoesNotAllocate)
{
    if (!allocgate::available())
        GTEST_SKIP() << "build without NIFDY_ALLOCGATE";

    Config conf = fig2StyleConfig();
    ExperimentConfig cfg = experimentFromConfig(conf);
    Experiment exp(cfg);
    SyntheticParams sp = SyntheticParams::heavy();
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<SyntheticWorkload>(
                               exp.proc(n), exp.msg(n), exp.barrier(),
                               exp.numNodes(), sp, cfg.seed));

    // Warmup: rings grow to their high-water marks, the packet pool
    // reaches steady state, protocol maps fill in.
    exp.runFor(20000);

    allocgate::arm();
    exp.runFor(5000);
    const std::uint64_t n = allocgate::disarm();
    EXPECT_EQ(n, 0u)
        << "the post-warmup hot loop allocated " << n
        << " times (bytes: " << allocgate::bytes()
        << "); hot-path queues must pre-size to their high-water "
           "mark (see DESIGN.md section 10)";
}

} // namespace
} // namespace nifdy
