#include "nic/retransmit.hh"

#include <algorithm>

#include "sim/anatomy.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace nifdy
{

void
LossyConfig::validate() const
{
    fatal_if(dropProb < 0 || dropProb >= 1.0,
             "lossy.dropProb must be in [0, 1)");
    fatal_if(retxTimeout < 1, "lossy.retxTimeout must be >= 1");
    fatal_if(backoffFactor < 1.0, "lossy.backoffFactor must be >= 1");
    fatal_if(maxRetxTimeout != 0 && maxRetxTimeout < retxTimeout,
             "lossy.maxRetxTimeout must be 0 or >= lossy.retxTimeout");
    fatal_if(jitterFrac < 0 || jitterFrac >= 1.0,
             "lossy.jitterFrac must be in [0, 1)");
    fatal_if(maxRetries < 0, "lossy.maxRetries must be >= 0");
}

LossyNifdyNic::LossyNifdyNic(NodeId node,
                             const Network::NodePorts &ports,
                             const NicParams &params,
                             const NifdyConfig &cfg,
                             const LossyConfig &lossy, PacketPool &pool)
    : NifdyNic(node, ports, params, cfg, pool), lossy_(lossy),
      dropRng_(params.seed, 0xd209 + node),
      backoffRng_(params.seed, 0xb0ff + node)
{
    lossy_.validate();
}

NIFDY_HOT void
LossyNifdyNic::step(Cycle now)
{
    checkTimers(now);
    NifdyNic::step(now);
}

bool
LossyNifdyNic::transitIdle() const
{
    if (!retxQueue_.empty())
        return false;
    return NifdyNic::transitIdle();
}

Cycle
LossyNifdyNic::scalarRetxTimeout(NodeId dst) const
{
    auto it = scalarRetx_.find(dst);
    return it == scalarRetx_.end() ? 0 : it->second.timeout;
}

Cycle
LossyNifdyNic::jittered(Cycle t)
{
    if (lossy_.jitterFrac <= 0)
        return t;
    Cycle spread =
        static_cast<Cycle>(static_cast<double>(t) * lossy_.jitterFrac);
    if (spread == 0)
        return t;
    return t - spread / 2 + backoffRng_.nextBounded(spread + 1);
}

void
LossyNifdyNic::rearm(Snapshot &snap, Cycle now)
{
    if (lossy_.backoffFactor > 1.0) {
        double next = static_cast<double>(snap.timeout) *
                      lossy_.backoffFactor;
        double cap = static_cast<double>(lossy_.effMaxTimeout());
        snap.timeout = static_cast<Cycle>(std::min(next, cap));
    }
    snap.deadline = now + jittered(snap.timeout);
}

NIFDY_HOT void
LossyNifdyNic::checkTimers(Cycle now)
{
    // Collect peers that exhausted their retry budget; state is
    // purged after the scan so the map iteration stays valid.
    std::vector<NodeId> exhausted;
    auto expire = [&](Snapshot &s) {
        if (now < s.deadline)
            return;
        if (lossy_.maxRetries > 0 && s.retries >= lossy_.maxRetries) {
            // nifdy:alloc-ok(fires only when a peer exhausts its retry budget, not steady state)
            exhausted.push_back(s.copy.dst);
            return;
        }
        retransmit(s, now);
        ++s.retries;
        rearm(s, now);
    };
    for (auto &kv : scalarRetx_)
        expire(kv.second);
    for (auto &kv : bulkRetx_)
        expire(kv.second);
    for (NodeId peer : exhausted)
        markPeerDead(peer, now, "retry cap exhausted");
}

void
LossyNifdyNic::retransmit(Snapshot &snap, Cycle now)
{
    Packet *p = pool_.alloc();
    std::uint64_t id = p->id;
    *p = snap.copy;
    p->id = id;
    p->routeScratch = 0;
    p->ackIssued = false;
    p->injectedAt = 0;
    // Re-stamp provenance: the clone is created now, carries the
    // attempt number, and points back at the original transmission.
    p->createdAt = now;
    p->cloneOf = snap.origId;
    p->attempt = snap.retries + 1;
    p->corrupted = false;
    retxQueue_.push_back(p); // nifdy:alloc-ok(Ring grows to high-water then reuses)
    ++retransmissions_;
    audit::onRetransmit(*p, node_);
    trace::onRetransmit(*p, node_, now);
    noteActivity();
}

void
LossyNifdyNic::purgeRetxState(NodeId peer, Cycle now, bool bulkOnly,
                              const char *why)
{
    // Drop the snapshots themselves (the packets they describe are
    // already terminal in the audit's eyes: delivered, dropped in
    // fabric, or still wedged behind a dead link).
    if (!bulkOnly)
        scalarRetx_.erase(peer);
    for (auto it = bulkRetx_.begin(); it != bulkRetx_.end();) {
        if (it->second.copy.dst == peer)
            it = bulkRetx_.erase(it);
        else
            ++it;
    }
    // Queued-but-not-injected retransmission clones for the peer.
    for (std::size_t i = 0; i < retxQueue_.size();) {
        Packet *p = retxQueue_[i];
        if (p->dst == peer &&
            (!bulkOnly || p->type == PacketType::bulk)) {
            audit::onDrop(*p, node_, why);
            trace::onDrop(*p, node_, now, why);
            anatomy::onDrop(*p, now);
            pool_.release(p);
            retxQueue_.erase(i);
            ++abandoned_;
        } else {
            ++i;
        }
    }
}

void
LossyNifdyNic::onPeerDead(NodeId peer, Cycle now)
{
    purgeRetxState(peer, now, false,
                   "peer dead: retransmission discarded");
}

void
LossyNifdyNic::onBulkTeardown(NodeId peer, Cycle now)
{
    // The dialog's unacked window can never be acked now; its
    // snapshots and queued clones go. The scalar timer (if any)
    // stays: the peer may still be alive and answer it.
    purgeRetxState(peer, now, true,
                   "dialog torn down: retransmission discarded");
}

void
LossyNifdyNic::onPeerRestart(NodeId peer, Cycle now)
{
    // The restarted incarnation's scalar stream starts over; our
    // receive-side duplicate filter must not compare its fresh
    // indices against the dead incarnation's high-water mark.
    recvScalarIdx_.erase(peer);
    NifdyNic::onPeerRestart(peer, now);
}

void
LossyNifdyNic::onCrash(Cycle now)
{
    scalarRetx_.clear();
    bulkRetx_.clear();
    sendScalarIdx_.clear();
    recvScalarIdx_.clear();
    for (Packet *p : retxQueue_)
        crashDiscard(p, now,
                     "node crashed: retransmission discarded");
    retxQueue_.clear();
    NifdyNic::onCrash(now);
}

NIFDY_HOT Packet *
LossyNifdyNic::nextToInject(NetClass cls, Cycle now)
{
    // Acks keep absolute priority; retransmissions come next.
    if (!hasAckQueued(cls) && !retxQueue_.empty()) {
        for (std::size_t i = 0; i < retxQueue_.size(); ++i) {
            Packet *p = retxQueue_[i];
            if (p->netClass == cls) {
                retxQueue_.erase(i);
                return p;
            }
        }
    }
    return NifdyNic::nextToInject(cls, now);
}

NIFDY_HOT void
LossyNifdyNic::onPacketDelivered(Packet *pkt, Cycle now)
{
    // CRC-check analogy: a packet corrupted inside the fabric is
    // discarded here, exactly like a receiver-side loss; the
    // sender's timer recovers it.
    if (pkt->corrupted) {
        ++corruptDropped_;
        if (pkt->type == PacketType::scalar)
            consumeReservation(); // canAccept() claimed a slot
        audit::onDrop(*pkt, node_, "corrupted in fabric (CRC)");
        trace::onDrop(*pkt, node_, now, "corrupted in fabric (CRC)");
        anatomy::onDrop(*pkt, now);
        pool_.release(pkt);
        noteActivity();
        return;
    }
    if (lossy_.dropProb > 0 && dropRng_.chance(lossy_.dropProb)) {
        ++packetsDropped_;
        if (pkt->type == PacketType::scalar)
            consumeReservation(); // canAccept() claimed a slot
        audit::onDrop(*pkt, node_, "fault-injected drop");
        trace::onDrop(*pkt, node_, now, "fault-injected drop");
        anatomy::onDrop(*pkt, now);
        pool_.release(pkt);
        noteActivity();
        return;
    }
    NifdyNic::onPacketDelivered(pkt, now);
}

void
LossyNifdyNic::onDataInjected(Packet *pkt, Cycle now)
{
    if (pkt->noAck)
        return;
    if (pkt->type == PacketType::bulk) {
        pkt->dupBit = false;
        Snapshot &s = bulkRetx_[bulkSentTotal() - 1];
        s.copy = *pkt;
        s.deadline = now + jittered(lossy_.retxTimeout);
        s.timeout = lossy_.retxTimeout;
        s.firstSent = now;
        s.origId = pkt->id;
        s.retries = 0;
        return;
    }
    // Fresh scalar packet: bump the per-destination sequence (the
    // header dupBit is its one-bit compression); retransmissions
    // keep the recorded copy's values.
    std::int64_t idx = sendScalarIdx_[pkt->dst]++;
    pkt->scalarIndex = idx;
    pkt->dupBit = idx & 1;
    Snapshot &s = scalarRetx_[pkt->dst];
    s.copy = *pkt;
    s.deadline = now + jittered(lossy_.retxTimeout);
    s.timeout = lossy_.retxTimeout;
    s.firstSent = now;
    s.origId = pkt->id;
    s.retries = 0;
}

void
LossyNifdyNic::onAckProcessed(const Packet &ack, Cycle now)
{
    bool isBulkAck = ack.ackDialog >= 0 && ack.ackSeq >= 0;
    if (!isBulkAck) {
        // A dialog-reject answers a bulk packet, not the outstanding
        // scalar: its timer must keep running.
        if (ack.ackRejectsBulk && ack.ackDialog >= 0)
            return;
        auto it = scalarRetx_.find(ack.src);
        if (it != scalarRetx_.end()) {
            if (it->second.retries > 0)
                recoveryLatency_.sample(now - it->second.firstSent);
            scalarRetx_.erase(it);
        }
        return;
    }
    // Cumulative bulk ack: clear every snapshot it covers (keys are
    // the monotone send indices).
    auto end = bulkRetx_.lower_bound(ack.ackTotal);
    for (auto it = bulkRetx_.begin(); it != end; ++it)
        if (it->second.retries > 0)
            recoveryLatency_.sample(now - it->second.firstSent);
    bulkRetx_.erase(bulkRetx_.begin(), end);
}

bool
LossyNifdyNic::isDuplicate(Packet &pkt, Cycle now)
{
    if (pkt.type == PacketType::scalar) {
        auto it = recvScalarIdx_.find(pkt.src);
        std::int64_t last = it == recvScalarIdx_.end() ? -1
                                                       : it->second;
        if (pkt.scalarIndex <= last) {
            ++duplicatesSeen_;
            // Repeat the (lost) ack; duplicates never earn a fresh
            // bulk grant.
            queueAck(makeAck(pkt, now, false));
            return true;
        }
        recvScalarIdx_[pkt.src] = pkt.scalarIndex;
        return false;
    }
    if (pkt.type == PacketType::bulk) {
        if (bulkPacketAcceptable(pkt))
            return false;
        ++duplicatesSeen_;
        if (bulkDialogMatches(pkt)) {
            // Already delivered, or a second copy of a buffered
            // index: repeat the cumulative ack at the frontier.
            reAckBulk(pkt.dialog, now);
            return true;
        }
        std::int64_t tomb = dialogTombstone(pkt.src);
        if (tomb <= 0) {
            // No record of this dialog at all: this incarnation
            // never granted it (we restarted cold, or the sender is
            // confused). Tell it to tear the dialog down.
            queueAck(makeDialogReject(pkt, now));
            return true;
        }
        // Late duplicate for a dialog that has been closed (or its
        // slot reused by another sender): repeat the final ack from
        // the tombstone so the sender can finish closing.
        Packet *ack = pool_.alloc();
        ack->type = PacketType::ack;
        ack->src = node_;
        ack->dst = pkt.src;
        ack->netClass = oppositeClass(pkt.netClass);
        ack->sizeBytes = config().ackBytes;
        ack->createdAt = now;
        ack->ackDialog = pkt.dialog;
        ack->ackSeq = pkt.seq;
        ack->ackTotal = tomb;
        ack->ackEpoch = pkt.srcEpoch;
        queueAck(ack);
        return true;
    }
    return false;
}

} // namespace nifdy
