file(REMOVE_RECURSE
  "CMakeFiles/nifdy_sim.dir/sim/config.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/nifdy_sim.dir/sim/kernel.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/kernel.cc.o.d"
  "CMakeFiles/nifdy_sim.dir/sim/log.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/nifdy_sim.dir/sim/rng.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/nifdy_sim.dir/sim/stats.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/nifdy_sim.dir/sim/table.cc.o"
  "CMakeFiles/nifdy_sim.dir/sim/table.cc.o.d"
  "libnifdy_sim.a"
  "libnifdy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nifdy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
