/**
 * @file
 * Section 6.1 tests: piggybacked acks (an application reply carries
 * the NIFDY ack for the request it answers) and their interaction
 * with bulk grants and packet loss.
 */

#include <gtest/gtest.h>

#include "nicharness.hh"

namespace nifdy
{
namespace
{

NifdyConfig
piggyCfg()
{
    NifdyConfig cfg;
    cfg.opt = 4;
    cfg.pool = 8;
    cfg.dialogs = 1;
    cfg.window = 4;
    cfg.piggybackAcks = true;
    cfg.piggybackWait = 400;
    return cfg;
}

/**
 * Request/reply driver on top of the harness: whenever node @p who
 * receives a packet marked expectsReply, queue a reply back.
 */
class Replier : public Steppable
{
  public:
    Replier(NifdyHarness &h, NodeId who) : h_(h), who_(who)
    {
        h_.pollEnabled[who_] = 0; // we poll ourselves
    }
    void
    step(Cycle now) override
    {
        if (Packet *p = h_.nic(who_).pollReceive(now)) {
            if (p->expectsReply) {
                Packet *r = h_.makeData(who_, p->src);
                r->netClass = oppositeClass(p->netClass);
                h_.pendingSends[who_].push_back(r);
                ++repliesSent;
            }
            h_.received[who_].push_back(p);
        }
    }
    NifdyHarness &h_;
    NodeId who_;
    int repliesSent = 0;
};

TEST(Piggyback, ReplyCarriesAck)
{
    NifdyHarness h(piggyCfg());
    Replier replier(h, 3);
    h.kernel.add(&replier);
    // A request that expects a reply: the reply should carry the
    // ack, so node 3 sends zero standalone acks.
    Packet *req = h.makeData(0, 3);
    req->expectsReply = true;
    h.pendingSends[0].push_back(req);
    ASSERT_TRUE(h.runUntilIdle(100000));
    EXPECT_EQ(replier.repliesSent, 1);
    EXPECT_EQ(h.received[0].size(), 1u); // the reply arrived
    EXPECT_EQ(h.nic(3).acksPiggybacked(), 1u);
    EXPECT_EQ(h.nic(3).acksSent(), 0u); // no standalone ack needed
    EXPECT_EQ(h.nic(0).acksSent(), 1u); // node 0 acks the reply
    EXPECT_EQ(h.nic(0).optOccupancy(), 0);
}

TEST(Piggyback, HeldAckGoesStandaloneOnTimeout)
{
    // The receiver never replies: the held ack must still be
    // released after piggybackWait so the sender is not blocked.
    NifdyHarness h(piggyCfg());
    Packet *req = h.makeData(0, 3);
    req->expectsReply = true;
    h.pendingSends[0].push_back(req);
    h.send(0, 3); // a second packet waits on the first's ack
    ASSERT_TRUE(h.runUntilIdle(100000));
    EXPECT_EQ(h.received[3].size(), 2u);
    EXPECT_EQ(h.nic(3).acksPiggybacked(), 0u);
    EXPECT_EQ(h.nic(3).acksSent(), 2u);
}

TEST(Piggyback, DisabledMeansNoHolding)
{
    NifdyConfig cfg = piggyCfg();
    cfg.piggybackAcks = false;
    NifdyHarness h(cfg);
    Replier replier(h, 3);
    h.kernel.add(&replier);
    Packet *req = h.makeData(0, 3);
    req->expectsReply = true;
    h.pendingSends[0].push_back(req);
    ASSERT_TRUE(h.runUntilIdle(100000));
    EXPECT_EQ(h.nic(3).acksPiggybacked(), 0u);
    EXPECT_EQ(h.nic(3).acksSent(), 1u); // standalone request ack
    EXPECT_EQ(h.nic(0).acksSent(), 1u); // reply ack
}

TEST(Piggyback, GrantRidesOnReply)
{
    // The request also asks for a bulk dialog: the grant must ride
    // on the piggybacked ack and activate the sender's dialog.
    NifdyHarness h(piggyCfg());
    Replier replier(h, 3);
    h.kernel.add(&replier);
    std::vector<Packet *> sent;
    for (int i = 0; i < 6; ++i) {
        Packet *p = h.makeData(0, 3);
        p->bulkRequest = true;
        p->bulkExit = i == 5;
        p->expectsReply = i == 0;
        sent.push_back(p);
        h.pendingSends[0].push_back(p);
    }
    ASSERT_TRUE(h.runUntilIdle(200000));
    EXPECT_EQ(h.received[3].size(), 6u);
    for (std::size_t i = 0; i < sent.size(); ++i)
        EXPECT_EQ(h.received[3][i], sent[i]);
    EXPECT_EQ(h.nic(3).bulkGrants(), 1u);
    EXPECT_GE(h.nic(3).acksPiggybacked(), 1u);
}

TEST(Piggyback, ManyRequestReplyRounds)
{
    NifdyHarness h(piggyCfg());
    Replier replier(h, 2);
    h.kernel.add(&replier);
    for (int i = 0; i < 10; ++i) {
        Packet *req = h.makeData(1, 2);
        req->expectsReply = true;
        h.pendingSends[1].push_back(req);
    }
    ASSERT_TRUE(h.runUntilIdle(400000));
    EXPECT_EQ(replier.repliesSent, 10);
    EXPECT_EQ(h.received[1].size(), 10u);
    // Most request acks rode on replies (the first may race).
    EXPECT_GE(h.nic(2).acksPiggybacked(), 8u);
    h.releaseReceived();
    EXPECT_EQ(h.pool.live(), 0u);
}

TEST(Piggyback, SurvivesPacketLoss)
{
    NifdyConfig cfg = piggyCfg();
    NifdyHarness h(cfg, 4, "mesh2d", 0.2, 1500);
    Replier replier(h, 3);
    h.kernel.add(&replier);
    for (int i = 0; i < 8; ++i) {
        Packet *req = h.makeData(0, 3);
        req->expectsReply = true;
        req->msgId = 100 + i;
        h.pendingSends[0].push_back(req);
    }
    ASSERT_TRUE(h.runUntilIdle(8000000));
    EXPECT_EQ(replier.repliesSent, 8);
    EXPECT_EQ(h.received[0].size(), 8u);
    h.releaseReceived();
    EXPECT_EQ(h.pool.live(), 0u);
}

} // namespace
} // namespace nifdy
