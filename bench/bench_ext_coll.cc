/**
 * @file
 * Collective offload evaluation: barrier latency scaling and crash
 * resilience. Part one sweeps machine size with a pure-barrier
 * workload (no data traffic) and compares the software message-tree
 * barrier against the NIC-resident combining tree: cycles per
 * barrier, collective packets on the wire, and the offload speedup.
 * The offload should scale with tree depth (log_k N hops of NIC
 * latency) while the software tree additionally pays the full
 * processor send/receive cost structure at every level.
 *
 * Part two crashes nodes mid-run under the offloaded engine (one
 * permanent fail-stop, one crash + restart) and reports the recovery
 * machinery's activity: retransmissions, probes, pruned subtrees,
 * and degraded completions. Survivors must finish every phase.
 *
 * Args: nodes ignored (the sweep is fixed); phases=32 seed=1
 *       topology=fattree arity=4 crashNodes=64 csv=false help=false
 */

#include "benchutil.hh"
#include "sim/fault.hh"
#include "traffic/collective.hh"

using namespace nifdy;

namespace
{

struct CollRun
{
    Cycle ran = 0;
    bool done = false;
    std::uint64_t collPackets = 0;
    std::uint64_t retx = 0;
    std::uint64_t degraded = 0;
    std::uint64_t pruned = 0;
    std::uint64_t probes = 0;
    std::uint64_t completedPhases = 0;
};

CollRun
runCollectives(const std::string &topology, int nodes, int arity,
               bool offload, int phases, std::uint64_t seed,
               const std::vector<NodeFault> &crashes)
{
    ExperimentConfig cfg;
    cfg.topology = topology;
    cfg.numNodes = nodes;
    cfg.nicKind = NicKind::nifdy;
    cfg.seed = seed;
    cfg.coll.offload = offload;
    cfg.coll.arity = arity;
    if (!crashes.empty()) {
        // Pull recovery timers in so the crash bench measures the
        // machinery, not the (conservatively long) default timers.
        cfg.coll.timeout = 300;
        cfg.coll.maxTimeout = 2400;
        cfg.coll.maxRetries = 4;
        cfg.coll.probeTimeout = 600;
        cfg.coll.maxProbes = 3;
        cfg.nodeFault.crashes = crashes;
    }
    Experiment exp(cfg);
    CollectiveParams cp;
    cp.phases = phases;
    cp.rotateOps = !crashes.empty(); // latency sweep: all barriers
    cp.arity = arity;
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<CollectiveWorkload>(
                               exp.proc(n), exp.msg(n), exp.barrier(),
                               exp.numNodes(), cp, seed));

    CollRun r;
    r.ran = exp.runUntilDone(static_cast<Cycle>(phases) * 400000);
    r.done = exp.allDone();
    for (NodeId n = 0; n < exp.numNodes(); ++n) {
        if (CollEngine *eng = exp.collEngine(n)) {
            r.collPackets += eng->collPacketsSent();
            r.retx += eng->retransmissions();
            r.degraded += eng->degradedCompletions();
            r.pruned += eng->childrenPruned();
            r.probes += eng->probesSent();
        }
        if (exp.nodeCrashedEver(n))
            continue;
        auto *w = dynamic_cast<CollectiveWorkload *>(exp.workload(n));
        r.completedPhases += w->collectivesDone();
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    BenchArgs args(argc, argv, 0, 16);
    if (args.conf.getBool("help", false)) {
        std::fputs(experimentCliHelp().c_str(), stdout);
        return 0;
    }
    std::string topology = args.conf.getString("topology", "fattree");
    int phases = static_cast<int>(args.conf.getInt("phases", 32));
    int arity = static_cast<int>(args.conf.getInt("arity", 4));
    int crashNodes =
        static_cast<int>(args.conf.getInt("crashNodes", 64));

    Table t("Barrier latency scaling on " + topology +
            ": software message tree vs NIC combining tree (arity " +
            std::to_string(arity) + ", " + std::to_string(phases) +
            " barrier phases)");
    t.header({"nodes", "mode", "cycles/barrier", "coll packets",
              "offload speedup"});
    const int sweep[] = {16, 64, 256};
    for (int nodes : sweep) {
        double perPhase[2] = {0, 0};
        for (int off = 0; off < 2; ++off) {
            CollRun r = runCollectives(topology, nodes, arity,
                                       off == 1, phases, args.seed,
                                       {});
            fatal_if(!r.done, "collective bench wedged at %d nodes",
                     nodes);
            perPhase[off] =
                static_cast<double>(r.ran) / double(phases);
            const char *mode = off ? "nic offload" : "software";
            t.row({Table::num(static_cast<long>(nodes)), mode,
                   Table::num(perPhase[off], 1),
                   Table::num(static_cast<long>(r.collPackets)),
                   off ? Table::num(perPhase[0] / perPhase[1], 2)
                       : "--"});
            std::string key = std::string("coll.cyclesPerBarrier.") +
                              (off ? "offload." : "software.") +
                              std::to_string(nodes);
            args.report.addMetric(key, perPhase[off]);
        }
    }
    args.emit(t);

    // Crash resilience: the offloaded tree under fail-stop faults.
    Table c("Crash recovery under NIC offload: " +
            std::to_string(crashNodes) + " nodes, " +
            std::to_string(phases) +
            " mixed phases (barrier/bcast/reduce)");
    c.header({"fault", "survivor phases", "retx", "probes", "pruned",
              "degraded"});
    struct FaultPoint
    {
        const char *name;
        std::vector<NodeFault> crashes;
    };
    NodeFault permanent;
    permanent.node = 2;
    permanent.crashAt = 2000;
    NodeFault bounce;
    bounce.node = 5;
    bounce.crashAt = 2000;
    bounce.restartAt = 5000;
    const FaultPoint points[] = {
        {"none", {}},
        {"1 fail-stop", {permanent}},
        {"1 crash+restart", {bounce}},
        {"fail-stop + bounce", {permanent, bounce}},
    };
    for (const FaultPoint &pt : points) {
        CollRun r = runCollectives(topology, crashNodes, arity, true,
                                   phases, args.seed, pt.crashes);
        fatal_if(!r.done, "crash bench wedged (%s)", pt.name);
        c.row({pt.name,
               Table::num(static_cast<long>(r.completedPhases)),
               Table::num(static_cast<long>(r.retx)),
               Table::num(static_cast<long>(r.probes)),
               Table::num(static_cast<long>(r.pruned)),
               Table::num(static_cast<long>(r.degraded))});
        std::string key =
            std::string("coll.crash.") + pt.name + ".";
        args.report.addMetric(key + "retx", r.retx);
        args.report.addMetric(key + "degraded", r.degraded);
        args.report.addMetric(key + "survivorPhases",
                              r.completedPhases);
    }
    args.emit(c);
    args.note("the NIC combining tree completes a barrier in tree-"
              "depth NIC hops and keeps scaling where the software "
              "tree pays processor send/receive costs per level; "
              "crashed subtrees are probed, pruned, and the "
              "collective completes among survivors (degraded).");
    return args.finish();
}
