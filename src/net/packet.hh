/**
 * @file
 * Packets, flits, and the packet pool.
 *
 * Packets are the protocol-visible unit (what NIFDY admits, acks,
 * and reorders). Flits are the unit of motion inside the network:
 * one flit is one 32-bit word (the paper's flit size), and a flit
 * crosses a link in flitBits/linkBits cycles.
 */

#ifndef NIFDY_NET_PACKET_HH
#define NIFDY_NET_PACKET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nifdy
{

/** Wire format categories. */
enum class PacketType : std::uint8_t
{
    scalar, //!< ordinary data packet, individually acked
    bulk,   //!< bulk-dialog data packet, windowed acks
    ack,    //!< NIFDY acknowledgment, consumed by the receiving NIC
    coll    //!< NIC-resident collective packet (src/coll), ctrlOnly
};

const char *packetTypeName(PacketType t);

/**
 * A network packet. Header fields mirror the paper's Section 2
 * protocol: every packet carries its source id (so the destination
 * can return an ack); bulk packets replace the source id bits with a
 * {sequence number, dialog number} pair.
 */
struct Packet
{
    /** Unique id, for tracking and debugging. */
    std::uint64_t id = 0;

    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    NetClass netClass = NetClass::request;
    PacketType type = PacketType::scalar;

    /** Total on-wire size in bytes, header included. */
    int sizeBytes = 0;

    //! @name NIFDY protocol header bits (Section 2.1.2, Section 6)
    //! @{
    bool bulkRequest = false; //!< sender asks for a bulk dialog
    bool bulkExit = false;    //!< last packet of a bulk dialog
    bool noAck = false;       //!< Section 6.1: no ack required
    bool expectsReply = false; //!< Section 6.1: hold my ack for the
                               //!< application reply to carry
    bool piggyAck = false;     //!< Section 6.1: this data packet
                               //!< carries an ack (fields below)
    bool dupBit = false;      //!< Section 6.2: retransmission parity
    std::int16_t dialog = -1; //!< bulk dialog number at the receiver
    std::int16_t seq = -1;    //!< bulk sequence number (mod 2W space)
    /**
     * Sender incarnation epoch. A node starts at epoch 0 and bumps
     * it on every restart after a crash; receivers reject packets
     * stamped with an epoch older than the newest one seen from that
     * source and resync their duplicate-filter state when a newer
     * epoch appears. Real hardware would carry a few bits and rely
     * on bounded crash-detection latency; the model carries the full
     * counter so arbitrarily late stale packets can never alias.
     */
    std::uint32_t srcEpoch = 0;
    //! @}

    //! @name Ack payload (valid when type == ack)
    //! @{
    bool ackGrantsBulk = false;  //!< receiver grants a bulk dialog
    bool ackRejectsBulk = false; //!< receiver refuses a bulk dialog
    std::int16_t ackDialog = -1; //!< dialog this (bulk) ack refers to
    std::int16_t ackSeq = -1;    //!< cumulative sequence acked
    std::int16_t ackWindow = 0;  //!< window size granted with a dialog
    /**
     * Cumulative count of bulk packets delivered (monotone form of
     * ackSeq). Hardware would reconstruct this from the W-bounded
     * sequence number; carrying the monotone count keeps the model
     * robust against ack reordering on multipath networks.
     */
    std::int64_t ackTotal = -1;
    /** Incarnation epoch of the data packet this ack answers; the
     * original sender discards acks whose epoch is not its own. */
    std::uint32_t ackEpoch = 0;
    //! @}

    //! @name Protocol-internal flags
    //! @{
    bool ctrlOnly = false;  //!< consumed by the NIC, never delivered
    bool ackIssued = false; //!< an ack for this packet went out
    /**
     * Monotone bulk send index (seq is its mod-2W compression on
     * the wire). The protocol logic works on the monotone form so
     * that arbitrarily late retransmissions can never alias a later
     * window epoch; real hardware gets the same effect from its
     * bounded-delay assumptions.
     */
    std::int64_t bulkIndex = -1;
    /**
     * Monotone per-(source, destination) scalar index for the
     * Section 6.2 duplicate filter; the header's dupBit is its
     * 1-bit compression.
     */
    std::int64_t scalarIndex = -1;
    //! @}

    //! @name Collective header (valid when type == coll; src/coll)
    //! @{
    std::int32_t collSeq = -1;    //!< collective sequence number
    std::uint8_t collKind = 0;    //!< CollKind on the wire
    std::uint8_t collOp = 0;      //!< CollOp on the wire
    std::int32_t collRound = 0;   //!< contribution (re)send round
    std::int32_t collCount = 0;   //!< participants combined below
    std::int64_t collValue = 0;   //!< combined subtree value / result
    bool collDegraded = false;    //!< combined on a pruned tree
    //! @}

    //! @name Message-layer bookkeeping (not on the wire)
    //! @{
    std::uint32_t msgId = 0; //!< which application message
    std::int32_t msgSeq = 0; //!< packet index within the message
    std::int32_t msgLen = 1; //!< packets in the message
    std::int32_t payloadWords = 0; //!< useful payload carried
    //! @}

    /**
     * Fault-injection marker: the packet was corrupted on an
     * internal link. Flits keep flowing (flow control is
     * unaffected); the receiving NIC's CRC check discards the
     * packet, which the Section 6.2 retransmission then repairs.
     */
    bool corrupted = false;

    //! @name Retransmission provenance (Section 6.2, not on wire)
    //! @{
    /** Original packet id when this is a retransmission clone. */
    std::uint64_t cloneOf = 0;
    /** Retransmission attempt number (0 = first transmission). */
    std::int32_t attempt = 0;
    //! @}

    //! @name Instrumentation
    //! @{
    Cycle createdAt = 0;  //!< handed to the NIC by the processor
    Cycle injectedAt = 0; //!< first flit entered the network
    /** Piggyback scheme: queued acks wait until this cycle for a
     * reply to ride on before going out standalone. */
    Cycle holdUntil = 0;
    //! @}

    /** Topology scratch (e.g. torus dateline state); reset on inject. */
    std::uint32_t routeScratch = 0;

    /** Number of flits this packet serializes into. */
    int numFlits(int flitBytes) const
    {
        return (sizeBytes + flitBytes - 1) / flitBytes;
    }

    std::string toString() const;
};

/**
 * One flit in motion. Flits reference their packet; the packet is
 * released back to the pool by whoever consumes the tail flit at the
 * final destination.
 */
struct Flit
{
    Packet *pkt = nullptr;
    bool head = false;
    bool tail = false;
    /** Virtual channel on the link currently being traversed. */
    std::int8_t vc = 0;

    bool valid() const { return pkt != nullptr; }
};

/**
 * Freelist allocator for packets. A simulation allocates all its
 * packets from one pool; conservation (allocated == released at the
 * end) is checked in tests.
 */
class PacketPool
{
  public:
    PacketPool() = default;
    ~PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Allocate a zeroed packet with a fresh id. */
    Packet *alloc();

    /** Return a packet to the freelist. */
    void release(Packet *pkt);

    std::uint64_t allocated() const { return allocated_; }
    std::uint64_t released() const { return released_; }
    /** Packets currently alive (allocated - released). */
    std::uint64_t live() const { return allocated_ - released_; }

  private:
    /** Backing storage; packets are recycled through freelist_. */
    std::vector<std::unique_ptr<Packet>> arena_;
    std::vector<Packet *> freelist_;
    std::uint64_t nextId_ = 1;
    std::uint64_t allocated_ = 0;
    std::uint64_t released_ = 0;
};

} // namespace nifdy

#endif // NIFDY_NET_PACKET_HH
