#include "sim/anatomy.hh"

#include <memory>

#include "net/packet.hh"
#include "sim/audit.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace nifdy
{

namespace
{

/** Active-sink stack (mirrors the Tracer stack). */
std::vector<Anatomy *> &
anatomyStack()
{
    // nifdy:static-ok(harness sink stack, scoped by RAII push/pop; not simulation state)
    static std::vector<Anatomy *> stack;
    return stack;
}

/** Deterministic 64-bit mix (splitmix64 finalizer). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
rootIdOf(const Packet &pkt)
{
    return pkt.cloneOf ? pkt.cloneOf : pkt.id;
}

/** Trace-event names (static storage; taxonomy per DESIGN.md §8). */
constexpr const char *sliceNames[numStallCauses] = {
    "anatomy.stall.swsend", "anatomy.stall.ackwait",
    "anatomy.stall.optslot", "anatomy.stall.optcap",
    "anatomy.stall.window", "anatomy.stall.inject",
    "anatomy.stall.arb",    "anatomy.stall.wire",
    "anatomy.stall.retx",   "anatomy.stall.epoch",
    "anatomy.stall.reorder", "anatomy.stall.swrecv",
    "anatomy.stall.coll",
};

constexpr const char *counterNames[numStallCauses] = {
    "anatomy.live.swsend", "anatomy.live.ackwait",
    "anatomy.live.optslot", "anatomy.live.optcap",
    "anatomy.live.window", "anatomy.live.inject",
    "anatomy.live.arb",    "anatomy.live.wire",
    "anatomy.live.retx",   "anatomy.live.epoch",
    "anatomy.live.reorder", "anatomy.live.swrecv",
    "anatomy.live.coll",
};

/**
 * Aggregate conservation: the per-cause totals tile the end-to-end
 * latencies, so their sums must agree at every cycle (records only
 * touch the global totals when they complete).
 */
class AnatomyConservationChecker : public InvariantChecker
{
  public:
    explicit AnatomyConservationChecker(const Anatomy *a) : a_(a) {}

    const char *name() const override { return "latency-anatomy"; }

    void
    endCycle(Cycle now) override
    {
        (void)now;
        check();
    }

    void finish() override { check(); }

  private:
    void
    check() const
    {
        std::uint64_t attributed = a_->totalAttributed();
        std::uint64_t latency = a_->totalLatency();
        if (attributed != latency) {
            fail("latency anatomy leaks cycles: " +
                 std::to_string(attributed) +
                 " attributed to stall causes vs " +
                 std::to_string(latency) +
                 " of end-to-end latency across " +
                 std::to_string(a_->packets()) + " packets");
        }
    }

    const Anatomy *a_;
};

} // namespace

void
AnatomyConfig::validate() const
{
    panic_if(sampleRate < 0.0 || sampleRate > 1.0,
             "anatomy.sampleRate %f out of [0, 1]", sampleRate);
}

std::unique_ptr<InvariantChecker>
makeAnatomyConservationChecker(const Anatomy *anatomy)
{
    return std::make_unique<AnatomyConservationChecker>(anatomy);
}

Anatomy::Anatomy(const AnatomyConfig &cfg, int numNodes) : cfg_(cfg)
{
    cfg_.validate();
    panic_if(numNodes < 1, "anatomy needs >= 1 node");
    if (cfg_.sampleRate >= 1.0) {
        sampleThreshold_ = ~std::uint64_t(0);
    } else if (cfg_.sampleRate <= 0.0) {
        sampleThreshold_ = 0;
    } else {
        sampleThreshold_ = std::uint64_t(
            cfg_.sampleRate * double(~std::uint64_t(0)));
    }
    for (int i = 0; i < numStallCauses; ++i) {
        dists_[i] = Distribution(std::string("anatomy.stall.") +
                                 stallCauseSlugs[i]);
        classDists_[0][i] = Distribution(
            std::string("anatomy.scalar.") + stallCauseSlugs[i]);
        classDists_[1][i] = Distribution(
            std::string("anatomy.bulk.") + stallCauseSlugs[i]);
    }
    nodeTotals_.resize(static_cast<std::size_t>(numNodes));
    nodePackets_.assign(static_cast<std::size_t>(numNodes), 0);
    nodeLatency_.assign(static_cast<std::size_t>(numNodes), 0);
    anatomyStack().push_back(this);
}

Anatomy::~Anatomy()
{
    auto &stack = anatomyStack();
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (*it == this) {
            stack.erase(std::next(it).base());
            break;
        }
    }
}

Anatomy *
Anatomy::current()
{
    auto &stack = anatomyStack();
    return stack.empty() ? nullptr : stack.back();
}

bool
Anatomy::sampledId(std::uint64_t rootId) const
{
    if (sampleThreshold_ == ~std::uint64_t(0))
        return true;
    if (sampleThreshold_ == 0)
        return false;
    return mix64(rootId ^ cfg_.seed) <= sampleThreshold_;
}

std::uint64_t
Anatomy::totalAttributed() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t t : totals_)
        sum += t;
    return sum;
}

Anatomy::Rec *
Anatomy::find(const Packet &pkt)
{
    if (pkt.type == PacketType::ack || pkt.ctrlOnly)
        return nullptr;
    auto it = recs_.find(rootIdOf(pkt));
    return it == recs_.end() ? nullptr : &it->second;
}

void
Anatomy::closeSegment(Rec &r, Cycle now)
{
    panic_if(now < r.last, "anatomy segment runs backwards "
             "(%llu -> %llu)",
             static_cast<unsigned long long>(r.last),
             static_cast<unsigned long long>(now));
    r.accum[static_cast<int>(r.cur)] += now - r.last;
    r.last = now;
}

void
Anatomy::transition(Rec &r, const Packet &pkt, StallCause cause,
                    Cycle now)
{
    if (cause == r.cur) {
        // Re-classified into the same cause: the open segment keeps
        // running (this is the per-cycle classifyStalls steady state).
        return;
    }
    Cycle from = r.last;
    int oldIdx = static_cast<int>(r.cur);
    int newIdx = static_cast<int>(cause);
    closeSegment(r, now);
    r.cur = cause;
    --live_[oldIdx];
    ++live_[newIdx];
    if (pkt.type == PacketType::bulk)
        r.bulk = true;
    if (trace::compiledIn()) {
        if (Tracer *t = Tracer::current()) {
            std::uint64_t root = rootIdOf(pkt);
            if (now > from)
                t->anatomySlice(sliceNames[oldIdx], root, from, now,
                                r.src);
            t->counterSample(counterNames[oldIdx], now, live_[oldIdx]);
            t->counterSample(counterNames[newIdx], now, live_[newIdx]);
        }
    }
}

void
Anatomy::onSend(const Packet &pkt, Cycle now)
{
    if (finished_ || pkt.type == PacketType::ack || pkt.ctrlOnly)
        return;
    std::uint64_t root = rootIdOf(pkt);
    if (pkt.cloneOf || !sampledId(root))
        return; // clones join their original's record at inject
    Rec &r = recs_[root];
    r.start = now;
    r.last = now;
    r.cur = StallCause::swSend;
    r.src = pkt.src;
    ++live_[static_cast<int>(StallCause::swSend)];
    if (trace::compiledIn()) {
        if (Tracer *t = Tracer::current())
            t->counterSample(
                counterNames[static_cast<int>(StallCause::swSend)],
                now, live_[static_cast<int>(StallCause::swSend)]);
    }
}

void
Anatomy::onStall(const Packet &pkt, StallCause cause, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, cause, now);
}

void
Anatomy::onInject(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::wireTransit, now);
}

void
Anatomy::onArbLoss(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::routerArb, now);
}

void
Anatomy::onHop(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::wireTransit, now);
}

void
Anatomy::onDrop(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::retxBackoff, now);
}

void
Anatomy::onEpochReject(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::epochRecovery, now);
}

void
Anatomy::onReorder(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::reorderWait, now);
}

void
Anatomy::onDeliver(const Packet &pkt, Cycle now)
{
    if (Rec *r = find(pkt))
        transition(*r, pkt, StallCause::swReceive, now);
}

void
Anatomy::onAccept(const Packet &pkt, Cycle now)
{
    if (pkt.type == PacketType::ack || pkt.ctrlOnly)
        return;
    std::uint64_t root = rootIdOf(pkt);
    auto it = recs_.find(root);
    if (it == recs_.end())
        return;
    Rec &r = it->second;
    Cycle from = r.last;
    int lastIdx = static_cast<int>(r.cur);
    closeSegment(r, now);
    --live_[lastIdx];

    // The tiling invariant, checked per packet: segments never
    // overlap and never leave gaps, so the per-cause cycles must sum
    // to the end-to-end latency exactly.
    std::uint64_t e2e = now - r.start;
    std::uint64_t sum = 0;
    for (std::uint64_t c : r.accum)
        sum += c;
    panic_if(sum != e2e,
             "latency anatomy conservation violated for packet "
             "root %llu: %llu attributed vs %llu end-to-end",
             static_cast<unsigned long long>(root),
             static_cast<unsigned long long>(sum),
             static_cast<unsigned long long>(e2e));

    int cls = r.bulk ? 1 : 0;
    for (int i = 0; i < numStallCauses; ++i) {
        totals_[i] += r.accum[i];
        dists_[i].sample(r.accum[i]);
        classDists_[cls][i].sample(r.accum[i]);
    }
    e2e_.sample(e2e);
    e2eSum_ += e2e;
    ++packets_;
    if (r.src != invalidNode &&
        static_cast<std::size_t>(r.src) < nodeTotals_.size()) {
        auto &nt = nodeTotals_[static_cast<std::size_t>(r.src)];
        for (int i = 0; i < numStallCauses; ++i)
            nt[i] += r.accum[i];
        ++nodePackets_[static_cast<std::size_t>(r.src)];
        nodeLatency_[static_cast<std::size_t>(r.src)] += e2e;
    }

    if (trace::compiledIn()) {
        if (Tracer *t = Tracer::current()) {
            if (now > from)
                t->anatomySlice(sliceNames[lastIdx], root, from, now,
                                r.src);
            t->counterSample(counterNames[lastIdx], now,
                             live_[lastIdx]);
        }
    }
    recs_.erase(it);
}

void
Anatomy::finish(Cycle now)
{
    (void)now;
    if (finished_)
        return;
    finished_ = true;
    // In-flight records never completed: their attribution would be
    // partial, so they are discarded rather than skewing the books
    // (this is also what keeps conservation exact under terminal
    // drops, dead peers, and node crashes).
    discarded_ += recs_.size();
    for (const auto &kv : recs_) // nifdy:unordered-ok(commutative decrement, order-free)
        --live_[static_cast<int>(kv.second.cur)];
    recs_.clear();
}

Table
Anatomy::blameTable(const std::string &title) const
{
    Table t(title);
    t.header({"cause", "cycles", "share", "mean/pkt", "p95/pkt"});
    std::uint64_t total = totalAttributed();
    for (int i = 0; i < numStallCauses; ++i) {
        double share = total ? double(totals_[i]) / double(total) : 0;
        t.row({stallCauseLabels[i], Table::num((unsigned long)totals_[i]),
               Table::num(share * 100.0, 1) + "%",
               Table::num(dists_[i].mean(), 1),
               Table::num(dists_[i].percentile(0.95), 1)});
    }
    t.row({"total", Table::num((unsigned long)total), "100.0%",
           Table::num(e2e_.mean(), 1),
           Table::num(e2e_.percentile(0.95), 1)});
    return t;
}

Table
Anatomy::nodeTable(const std::string &title) const
{
    Table t(title);
    std::vector<std::string> cols{"node", "pkts", "latency"};
    for (int i = 0; i < numStallCauses; ++i)
        cols.push_back(stallCauseSlugs[i]);
    t.header(std::move(cols));
    for (std::size_t n = 0; n < nodeTotals_.size(); ++n) {
        if (nodePackets_[n] == 0)
            continue;
        std::vector<std::string> row{
            Table::num((long)n),
            Table::num((unsigned long)nodePackets_[n]),
            Table::num((unsigned long)nodeLatency_[n])};
        for (int i = 0; i < numStallCauses; ++i)
            row.push_back(Table::num((unsigned long)nodeTotals_[n][i]));
        t.row(std::move(row));
    }
    return t;
}

Table
Anatomy::classTable(const std::string &title) const
{
    Table t(title);
    t.header({"cause", "scalar cycles", "scalar mean", "bulk cycles",
              "bulk mean"});
    for (int i = 0; i < numStallCauses; ++i) {
        const Distribution &s = classDists_[0][i];
        const Distribution &b = classDists_[1][i];
        t.row({stallCauseLabels[i],
               Table::num((unsigned long)s.sum()),
               Table::num(s.mean(), 1),
               Table::num((unsigned long)b.sum()),
               Table::num(b.mean(), 1)});
    }
    return t;
}

} // namespace nifdy
