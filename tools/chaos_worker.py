#!/usr/bin/env python3
"""Deterministically misbehaving campaign worker.

A stand-in for examples/run_experiment that the campaign tests and
the CI `campaign` job point the engine at. It speaks the same CLI
(key=value arguments plus `--json PATH`) and decides how to behave
from a hash of (chaos.seed, the sorted job config, the attempt
number the supervisor passes in NIFDY_CAMPAIGN_ATTEMPT):

  crash     exit nonzero without writing a report
  hang      sleep far past any sane wall timeout (bounded, so
            orphans self-clean even if the supervisor dies)
  truncate  write a PREFIX of the valid report -- a complete but
            unparsable file -- and exit 0, modeling a worker whose
            own report write is not atomic
  ok        write the valid report atomically and exit 0

Every decision is a pure function of its inputs, and the *content*
of the valid report depends only on the job config (never on the
attempt), so a campaign that retries through any amount of injected
chaos must aggregate to bytes identical to a chaos-free run. That is
exactly the property tests/test_campaign.cc and CI assert.

Knobs (all optional; probabilities are per-attempt):
  chaos.seed=N          decision seed (default 0)
  chaos.crashProb=P     probability of crashing (default 0)
  chaos.hangProb=P      probability of hanging (default 0)
  chaos.truncProb=P     probability of a truncated report (default 0)
  chaos.alwaysFail=true fail every attempt (retry-cap tests)
  chaos.ignoreTerm=true ignore SIGTERM while hanging, forcing the
                        supervisor's SIGKILL escalation
"""

import hashlib
import json
import os
import signal
import sys
import time

HANG_BOUND_SECONDS = 60.0


def parse_args(argv):
    knobs = {}
    json_path = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--json":
            if i + 1 >= len(argv):
                sys.exit("chaos_worker: --json needs a path")
            json_path = argv[i + 1]
            i += 2
            continue
        if "=" not in arg:
            sys.exit(f"chaos_worker: expected key=value, got {arg!r}")
        key, value = arg.split("=", 1)
        knobs[key] = value
        i += 1
    return knobs, json_path


def canonical(knobs):
    return "".join(f"{k}={v}\n" for k, v in sorted(knobs.items()))


def unit_fraction(*parts):
    """Deterministic hash of the parts -> float in [0, 1)."""
    digest = hashlib.sha256("|".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def build_report(knobs):
    """The valid report: content depends only on the job config."""
    base = unit_fraction("metrics", canonical(knobs))
    metrics = {
        "run.packets.delivered": 1000 + int(base * 9000),
        "run.goodput": round(0.5 + base * 0.45, 6),
        "nic.latency.p50": 20 + int(base * 30),
        "nic.latency.p99": 80 + int(base * 300),
    }
    report = {
        "schema": "nifdy-report-1",
        "tool": "chaos_worker",
        "config": dict(sorted(knobs.items())),
        "metrics": metrics,
        "tables": [],
        "series": [],
        "notes": [],
    }
    return json.dumps(report, sort_keys=False) + "\n"


def main():
    knobs, json_path = parse_args(sys.argv[1:])
    attempt = os.environ.get("NIFDY_CAMPAIGN_ATTEMPT", "0")
    seed = knobs.get("chaos.seed", "0")
    draw = unit_fraction("behavior", seed, attempt, canonical(knobs))

    crash_p = float(knobs.get("chaos.crashProb", "0"))
    hang_p = float(knobs.get("chaos.hangProb", "0"))
    trunc_p = float(knobs.get("chaos.truncProb", "0"))

    if knobs.get("chaos.alwaysFail", "false") == "true":
        sys.exit(3)
    if draw < crash_p:
        sys.exit(3)
    if draw < crash_p + hang_p:
        if knobs.get("chaos.ignoreTerm", "false") == "true":
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        # Bounded: an orphaned hanger exits on its own eventually.
        time.sleep(HANG_BOUND_SECONDS)
        sys.exit(3)

    content = build_report(knobs)
    if json_path is None:
        sys.stdout.write(content)
        return
    if draw < crash_p + hang_p + trunc_p:
        # A worker whose report write is not atomic: leave a prefix
        # of valid JSON at the destination and claim success.
        with open(json_path, "w") as f:
            f.write(content[: max(1, len(content) // 2)])
        return
    tmp = f"{json_path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        f.write(content)
        f.flush()
        os.fsync(f.fileno())
    os.rename(tmp, json_path)


if __name__ == "__main__":
    main()
