#include "proc/message.hh"

#include "sim/log.hh"

namespace nifdy
{

MessageLayer::MessageLayer(Processor &proc, PacketPool &pool,
                           const MessageParams &params)
    : proc_(proc), pool_(pool), params_(params)
{
    fatal_if(params_.packetWords <= params_.headerWords +
                                        params_.bookkeepingWords,
             "packet too small for header and bookkeeping");
}

int
MessageLayer::payloadPerPacket(bool firstPacket) const
{
    int p = params_.packetWords - params_.headerWords;
    // Out of order: every packet carries its offset. In order: only
    // the first packet carries the transfer's setup information.
    if (!params_.inOrder || firstPacket)
        p -= params_.bookkeepingWords;
    return p;
}

int
MessageLayer::packetsForWords(int words) const
{
    int first = payloadPerPacket(true);
    int rest = payloadPerPacket(false);
    if (words <= first)
        return 1;
    return 1 + (words - first + rest - 1) / rest;
}

void
MessageLayer::enqueueMessage(NodeId dst, int words, NetClass cls)
{
    panic_if(words < 0, "negative message size");
    PendingMsg m;
    m.dst = dst;
    m.packets = packetsForWords(words);
    m.words = words;
    m.cls = cls;
    m.id = nextMsgId_++;
    queue_.push_back(m); // nifdy:alloc-ok(Ring grows to backlog high-water then reuses)
}

void
MessageLayer::enqueuePackets(NodeId dst, int packets, NetClass cls)
{
    panic_if(packets < 1, "empty message");
    PendingMsg m;
    m.dst = dst;
    m.packets = packets;
    // Full packets: the payload is whatever fits.
    m.words = payloadPerPacket(true) +
              (packets - 1) * payloadPerPacket(false);
    m.cls = cls;
    m.id = nextMsgId_++;
    queue_.push_back(m); // nifdy:alloc-ok(Ring grows to backlog high-water then reuses)
}

Packet *
MessageLayer::buildNext(PendingMsg &msg, Cycle now)
{
    Packet *pkt = pool_.alloc();
    pkt->src = proc_.id();
    pkt->dst = msg.dst;
    pkt->netClass = msg.cls;
    pkt->type = PacketType::scalar;
    pkt->sizeBytes = params_.packetWords * bytesPerWord;
    pkt->msgId = msg.id;
    pkt->msgSeq = msg.seq;
    pkt->msgLen = msg.packets;
    pkt->createdAt = now;
    int payload = std::min(msg.words, payloadPerPacket(msg.seq == 0));
    pkt->payloadWords = payload;
    msg.words -= payload;
    // Section 2.2: the communication layer turns on the bulk-mode
    // request bit for transfers above the chosen size threshold.
    if (params_.bulkThreshold > 0 && msg.packets >= params_.bulkThreshold)
        pkt->bulkRequest = true;
    // Mark the end of the transfer so the NIFDY unit can close a
    // bulk dialog with the last packet.
    if (msg.seq == msg.packets - 1)
        pkt->bulkExit = true;
    ++msg.seq;
    return pkt;
}

bool
MessageLayer::pump(Cycle now)
{
    if (!staged_) {
        if (queue_.empty())
            return false;
        staged_ = buildNext(queue_.front(), now);
        if (queue_.front().seq >= queue_.front().packets)
            queue_.pop_front();
    }
    if (!proc_.sendPacket(staged_, now))
        return false;
    staged_ = nullptr;
    ++packetsSent_;
    return true;
}

void
MessageLayer::crashReset(Cycle now)
{
    (void)now;
    if (staged_) {
        // Never injected, so the audit never saw it: a plain release
        // keeps the pool conservation check honest.
        pool_.release(staged_);
        staged_ = nullptr;
    }
    queue_.clear();
}

int
MessageLayer::accept(Packet *pkt, Cycle now)
{
    int words = pkt->payloadWords;
    ++packetsReceived_;
    wordsReceived_ += words;
    // Software reordering penalty for multi-packet transfers that
    // the network may have scrambled.
    if (!params_.inOrder && pkt->msgLen > 1 && params_.reorderCost > 0)
        proc_.compute(params_.reorderCost, now);
    pool_.release(pkt);
    return words;
}

} // namespace nifdy
