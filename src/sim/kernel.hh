/**
 * @file
 * Cycle-synchronous simulation kernel.
 *
 * Every component implements Steppable and is advanced exactly once
 * per simulated cycle. Inter-component communication goes through
 * Channel objects whose contents only become visible at a later
 * cycle, so the order in which components step within one cycle is
 * immaterial -- this mirrors the paper's fully synchronous simulator
 * ("Each cycle is simulated explicitly and synchronously by all
 * objects").
 */

#ifndef NIFDY_SIM_KERNEL_HH
#define NIFDY_SIM_KERNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nifdy
{

class Audit;
class Metrics;
class Profiler;

/** Anything advanced once per cycle by the Kernel. */
class Steppable
{
  public:
    virtual ~Steppable() = default;

    /** Advance one cycle. @param now the cycle being executed. */
    virtual void step(Cycle now) = 0;

    /**
     * Component-class label for the host-cost profiler's roll-up
     * (sim/profile.hh): "router", "nifdy-nic", "plain-nic", "proc",
     * "fault-driver". Must be a string constant, stable for the
     * component's lifetime.
     */
    virtual const char *profileClass() const { return "other"; }
};

/**
 * The simulation engine: a registry of Steppable components and a
 * run loop with a no-progress watchdog.
 */
class Kernel
{
  public:
    Kernel() = default;
    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register a component (non-owning; must outlive the kernel). */
    void add(Steppable *obj, std::string name = "");

    /** Current simulated cycle (the next one to execute). */
    Cycle now() const { return now_; }

    /** Execute exactly one cycle. */
    void step();

    /**
     * Run until @p done returns true or @p maxCycles have executed.
     * @return the cycle count at exit.
     *
     * If no component reports activity for watchdogLimit() cycles
     * while the predicate is still false, the kernel panics with the
     * registered component names -- this catches protocol or routing
     * deadlocks in simulations that should otherwise make progress.
     */
    Cycle run(Cycle maxCycles,
              const std::function<bool()> &done = nullptr);

    /**
     * Components call this whenever they make observable progress
     * (move a flit, deliver a packet, consume a busy cycle). Feeds
     * the deadlock watchdog, and -- via before/after comparisons of
     * the event counter around each step() call -- the profiler's
     * per-component idle-work account.
     */
    void noteActivity() { ++activityEvents_; }

    /** Cycles of global inactivity tolerated before panicking. */
    void setWatchdogLimit(Cycle limit) { watchdogLimit_ = limit; }
    Cycle watchdogLimit() const { return watchdogLimit_; }

    /**
     * Attach an invariant-audit registry (non-owning, may be
     * nullptr): its polled checks run at the end of every cycle,
     * after all components have stepped.
     */
    void setAudit(Audit *audit) { audit_ = audit; }
    Audit *audit() const { return audit_; }

    /**
     * Attach a metric registry (non-owning, may be nullptr): its
     * snapshot clock ticks at the end of every cycle, after the
     * audit's polled checks.
     */
    void setMetrics(Metrics *metrics) { metrics_ = metrics; }
    Metrics *metrics() const { return metrics_; }

    /**
     * Attach a host-cost profiler (non-owning, may be nullptr).
     * While attached, step() takes the profiled path; detached, the
     * hot loop pays exactly one pointer test (the always-compiled
     * idle path, so profile-off runs are byte-identical).
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }
    Profiler *profiler() const { return profiler_; }

  private:
    /** Build and raise the deadlock-watchdog panic message (cold:
     * keeps string formatting out of the hot run loop). */
    [[noreturn]] void watchdogPanic() const;

    /** step() with the attached profiler's accounts active. */
    void stepProfiled();

    Cycle now_ = 0;
    /** Monotone count of noteActivity() calls. */
    std::uint64_t activityEvents_ = 0;
    Cycle idleCycles_ = 0;
    Cycle watchdogLimit_ = 200000;
    std::vector<Steppable *> objects_;
    std::vector<std::string> names_;
    Audit *audit_ = nullptr;
    Metrics *metrics_ = nullptr;
    Profiler *profiler_ = nullptr;
};

} // namespace nifdy

#endif // NIFDY_SIM_KERNEL_HH
