"""annotation-reason / annotation-tag: the escape hatches must
justify themselves.

Every `// nifdy:<tag>-ok(...)` annotation needs a non-empty reason
-- a bare waiver tells the next reader nothing and rots silently --
and must use a known tag so a typo cannot silently disable a rule.
"""

from ..common import KNOWN_TAGS, Violation


def check_reason(ctx):
    violations = []
    for path, sf in ctx.all_files.items():
        for lineno, anns in sorted(sf.annotations.items()):
            for tag, reason in anns:
                if reason is None or not reason.strip():
                    violations.append(Violation(
                        path, lineno, "annotation-reason",
                        f"nifdy:{tag}-ok without a reason; write "
                        f"// nifdy:{tag}-ok(<why this is safe>)"))
    return violations


def check_tag(ctx):
    known = ", ".join(sorted(KNOWN_TAGS))
    violations = []
    for path, sf in ctx.all_files.items():
        for lineno, anns in sorted(sf.annotations.items()):
            for tag, _reason in anns:
                if tag not in KNOWN_TAGS:
                    violations.append(Violation(
                        path, lineno, "annotation-tag",
                        f"unknown annotation tag '{tag}' "
                        f"(known: {known}); a typo here would "
                        "silently disable a rule"))
    return violations


RULES = {
    "annotation-reason": check_reason,
    "annotation-tag": check_tag,
}
