/**
 * @file
 * Metric registry with periodic JSONL snapshots.
 *
 * Layered on StatSet: a Metrics object owns a StatSet (counters,
 * distributions, time series) and adds two registration kinds that
 * StatSet cannot express:
 *
 *  - gauges: named callbacks sampled only at snapshot instants
 *    (per-channel utilization, OPT/window occupancy, buffer depth);
 *    registration is cheap and sampling cost is paid per snapshot,
 *    never per cycle;
 *  - distribution sources: callbacks producing a Distribution on
 *    demand (e.g. packet latency merged across every NIC), exported
 *    with p50/p95/p99 from the power-of-two histogram buckets.
 *
 * When snapshotting is started (metrics.path / metrics.interval
 * knobs) the Kernel calls endCycle() once per cycle after every
 * component (Kernel::setMetrics, same slot pattern as setAudit) and
 * each due snapshot appends one self-contained JSON line to the
 * output file -- a JSONL time series diffable across runs.
 */

#ifndef NIFDY_SIM_METRICS_HH
#define NIFDY_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace nifdy
{

/** Runtime knobs (CLI: metrics.path / metrics.interval). */
struct MetricsConfig
{
    /** JSONL output file; empty disables periodic snapshots. */
    std::string path;
    /** Cycles between snapshots. */
    Cycle interval = 10000;

    /** Panic on out-of-range values. */
    void validate() const;
};

class Metrics
{
  public:
    Metrics();
    ~Metrics();
    Metrics(const Metrics &) = delete;
    Metrics &operator=(const Metrics &) = delete;

    /** The underlying registry for plain counters/distributions. */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /**
     * Register a gauge. @p instance distinguishes replicas of one
     * component kind (router 3, channel 17, ...); the exported key
     * is "name[instance]", or just "name" when instance < 0. The
     * callback runs at snapshot time only.
     */
    void addGauge(const std::string &name, int instance,
                  std::function<double(Cycle)> fn);

    /** Register a distribution source, exported with count / mean /
     * min / max / p50 / p95 / p99 at each snapshot. */
    void addDistSource(const std::string &name,
                       std::function<Distribution()> fn);

    /** Open the JSONL file and arm periodic snapshots. */
    void startSnapshots(const MetricsConfig &cfg);
    bool snapshotting() const { return writer_ != nullptr; }

    /** Kernel slot: takes a snapshot when one is due. */
    void endCycle(Cycle now);

    /** Final snapshot (if the last interval is partially elapsed)
     * and file close. Idempotent; the destructor calls it. */
    void finish(Cycle now);

    /** One snapshot rendered as a single JSON line (no trailing
     * newline); also usable without a file for tests/reports. */
    std::string snapshotJson(Cycle now) const;

    std::uint64_t snapshotsTaken() const { return snapshots_; }

  private:
    struct Gauge
    {
        std::string key;
        std::function<double(Cycle)> fn;
    };
    struct DistSource
    {
        std::string key;
        std::function<Distribution()> fn;
    };

    void takeSnapshot(Cycle now);

    StatSet stats_;
    std::vector<Gauge> gauges_;
    std::vector<DistSource> distSources_;
    MetricsConfig cfg_;
    /** Opaque ofstream (kept out of the header). */
    struct Writer;
    std::unique_ptr<Writer> writer_;
    Cycle nextSnapshot_ = 0;
    Cycle lastSnapshot_ = neverCycle;
    std::uint64_t snapshots_ = 0;
};

} // namespace nifdy

#endif // NIFDY_SIM_METRICS_HH
