# Empty dependencies file for bench_fig8_em3d_heavy.
# This may be replaced when dependencies are built.
