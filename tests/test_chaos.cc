/**
 * @file
 * Chaos-soak harness for the endpoint fault domain: seeded
 * randomized crash/restart/link-fault schedules over long runs with
 * end-of-run conservation checks -- live-pair payload streams match
 * the fault-free run, no leaked pool packets, no OPT entries or
 * bulk dialogs left aimed at dead peers -- plus the targeted
 * scenarios the design calls out: determinism of seeded chaos runs
 * (byte-identical JSON reports), crash-without-restart termination
 * through the no-progress grace path, and a receiver restart
 * mid-bulk-dialog that is rejected by the epoch/dialog check and
 * then re-established cleanly. The invariant audit rides along on
 * every run, so protocol violations fail these tests hard.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/audit.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/report.hh"
#include "traffic/collective.hh"
#include "traffic/cshift.hh"
#include "traffic/synthetic.hh"

namespace nifdy
{
namespace
{

//===------------------------------------------------------------===//
// Delivered-stream recording (live-pair conservation)
//===------------------------------------------------------------===//

/** Per-flow delivered tuples, keyed by (receiver, sender). The
 * delivery hook fires after protocol dedup and the epoch gate, so
 * this is the stream the software actually consumes. */
struct DeliveryLog
{
    using Tuple = std::array<long, 3>; // msgId, msgSeq, payloadWords
    std::map<std::pair<NodeId, NodeId>, std::vector<Tuple>> flows;
};

class DeliveryRecorder : public InvariantChecker
{
  public:
    explicit DeliveryRecorder(DeliveryLog *log) : log_(log) {}
    const char *name() const override { return "delivery-recorder"; }
    void
    onDeliver(const Packet &pkt, NodeId node) override
    {
        log_->flows[{node, pkt.src}].push_back(
            {static_cast<long>(pkt.msgId),
             static_cast<long>(pkt.msgSeq),
             static_cast<long>(pkt.payloadWords)});
    }

  private:
    DeliveryLog *log_;
};

/** Chaos runs stop mid-stream and adaptive topologies interleave
 * concurrent messages differently, so positional equality is too
 * strict. The conservation invariant: any message both runs
 * delivered in full carries byte-identical fragments. */
void
expectMessagesIdentical(const DeliveryLog &base,
                        const DeliveryLog &other)
{
    auto group = [](const std::vector<DeliveryLog::Tuple> &v) {
        std::map<long, std::vector<DeliveryLog::Tuple>> m;
        for (const auto &t : v)
            m[t[0]].push_back(t);
        for (auto &e : m)
            std::sort(e.second.begin(), e.second.end());
        return m;
    };
    std::size_t compared = 0;
    for (const auto &kv : other.flows) {
        auto it = base.flows.find(kv.first);
        if (it == base.flows.end())
            continue;
        auto bm = group(it->second);
        auto om = group(kv.second);
        for (const auto &msg : om) {
            auto bit = bm.find(msg.first);
            if (bit == bm.end() ||
                bit->second.size() != msg.second.size())
                continue; // cut off mid-message in one of the runs
            ++compared;
            ASSERT_EQ(bit->second, msg.second)
                << "flow " << kv.first.second << " -> "
                << kv.first.first << " message " << msg.first
                << " differs between runs";
        }
    }
    EXPECT_GT(compared, 0u) << "no messages overlapped between runs";
}

/** Drop every flow that touches a node that crashed during the run
 * or whose receiver wrote the sender off as dead: those pairs are
 * exempt from byte-identity (the fault domain interrupted them). */
DeliveryLog
liveFlowsOnly(const DeliveryLog &log, Experiment &exp)
{
    DeliveryLog out;
    for (const auto &kv : log.flows) {
        NodeId receiver = kv.first.first;
        NodeId sender = kv.first.second;
        if (exp.nodeCrashedEver(receiver) ||
            exp.nodeCrashedEver(sender))
            continue;
        auto *nn = dynamic_cast<NifdyNic *>(&exp.nic(receiver));
        if (nn && nn->isPeerDead(sender))
            continue;
        out.flows[kv.first] = kv.second;
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::uint64_t
totalEpochRejects(Experiment &exp)
{
    std::uint64_t total = 0;
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        if (auto *nn = dynamic_cast<NifdyNic *>(&exp.nic(n)))
            total += nn->epochRejects();
    return total;
}

std::uint64_t
totalDialogTeardowns(Experiment &exp)
{
    std::uint64_t total = 0;
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        if (auto *nn = dynamic_cast<NifdyNic *>(&exp.nic(n)))
            total += nn->dialogTeardowns();
    return total;
}

/** End-of-run conservation: no live NIC still holds protocol state
 * aimed at a node that is down right now. Reclamation (retry caps,
 * reclaim timeouts, dialog teardowns) must have run by the time the
 * experiment stops. */
void
expectNoStateAimedAtDeadNodes(Experiment &exp)
{
    for (NodeId n = 0; n < exp.numNodes(); ++n) {
        if (exp.nic(n).crashed())
            continue;
        auto *nn = dynamic_cast<NifdyNic *>(&exp.nic(n));
        if (!nn)
            continue;
        for (NodeId dst : nn->optEntries())
            EXPECT_FALSE(exp.nic(dst).crashed())
                << "node " << n << " holds an OPT entry for dead "
                << "node " << dst;
        if (nn->bulkActive()) {
            EXPECT_FALSE(exp.nic(nn->bulkPeer()).crashed())
                << "node " << n << " still streams a bulk dialog "
                << "to dead node " << nn->bulkPeer();
        }
        for (int d = 0; d < nn->numInDialogs(); ++d) {
            auto view = nn->inDialogView(d);
            if (view.active) {
                EXPECT_FALSE(exp.nic(view.src).crashed())
                    << "node " << n << " keeps an in-dialog from "
                    << "dead node " << view.src;
            }
        }
    }
}

//===------------------------------------------------------------===//
// The chaos soak: crash/restart/link-fault mix on three topologies
//===------------------------------------------------------------===//

ExperimentConfig
chaosCfg(const std::string &topo, bool withFaults)
{
    ExperimentConfig cfg;
    cfg.topology = topo;
    cfg.numNodes = topo == "mesh3d" ? 8 : 16;
    cfg.nicKind = NicKind::lossy;
    cfg.msg.packetWords = 6;
    cfg.audit = true;
    cfg.seed = 2;
    cfg.lossy.retxTimeout = 1200;
    cfg.lossy.backoffFactor = 2.0;
    cfg.lossy.maxRetxTimeout = 9600;
    cfg.lossy.jitterFrac = 0.25;
    cfg.lossy.maxRetries = 8; // finite: dead peers must be declared
    if (!withFaults)
        return cfg;
    cfg.fault.dropProb = 0.02;
    // One permanent fail-stop plus two seeded random crash/restart
    // victims, all landing while traffic is in full swing.
    NodeFault permanent;
    permanent.node = 2;
    permanent.crashAt = 30000;
    cfg.nodeFault.crashes.push_back(permanent);
    cfg.nodeFault.randomCrashes = 2;
    cfg.nodeFault.randomCrashFrom = 40000;
    cfg.nodeFault.randomCrashSpan = 40000;
    cfg.nodeFault.randomRestartAfter = 6000;
    cfg.nodeFault.seed = 11;
    cfg.nodeReclaim = 20000;
    return cfg;
}

void
runChaos(const std::string &topo, bool withFaults, Cycle cycles,
         DeliveryLog &log, std::unique_ptr<Experiment> &out)
{
    ExperimentConfig cfg = chaosCfg(topo, withFaults);
    out = std::make_unique<Experiment>(cfg);
    Experiment &exp = *out;
    exp.audit()->add(std::make_unique<DeliveryRecorder>(&log));
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<SyntheticWorkload>(
                               exp.proc(n), exp.msg(n),
                               exp.barrier(), exp.numNodes(),
                               SyntheticParams::heavy(), 1));
    exp.runFor(cycles);
}

TEST(ChaosSoak, CrashRestartLinkFaultMixAllTopologies)
{
    const std::string topos[] = {"fattree", "torus2d", "mesh3d"};
    for (const std::string &topo : topos) {
        SCOPED_TRACE(topo);
        const Cycle cycles = 160000;
        DeliveryLog baseLog;
        std::unique_ptr<Experiment> base;
        runChaos(topo, false, cycles, baseLog, base);

        DeliveryLog chaosLog;
        std::unique_ptr<Experiment> chaos;
        runChaos(topo, true, cycles, chaosLog, chaos);

        // The schedule fired: one permanent crash, two restarts.
        NodeFaultDriver *driver = chaos->nodeFaults();
        ASSERT_NE(driver, nullptr);
        EXPECT_TRUE(driver->exhausted());
        EXPECT_EQ(chaos->nodeCrashes(), 3u);
        EXPECT_EQ(chaos->nodeRestarts(), 2u);
        EXPECT_TRUE(chaos->nic(2).crashed());
        EXPECT_TRUE(chaos->nodeCrashedEver(2));

        // Live nodes noticed the permanent death and reclaimed.
        EXPECT_GT(chaos->totalDeadPeers(), 0);
        expectNoStateAimedAtDeadNodes(*chaos);

        // The machine as a whole kept delivering through the chaos.
        EXPECT_GT(chaos->packetsDelivered(),
                  base->packetsDelivered() / 4);

        // Conservation: flows between pairs the fault domain never
        // touched are byte-identical to the fault-free run.
        expectMessagesIdentical(liveFlowsOnly(baseLog, *base),
                                liveFlowsOnly(chaosLog, *chaos));
    }
}

//===------------------------------------------------------------===//
// The collective-heavy chaos point: offloaded collectives plus data
// bursts under the full fault mix
//===------------------------------------------------------------===//

TEST(ChaosSoak, CollectiveHeavyMixSurvivesCrashesAndLoss)
{
    // Same fault cocktail as the main soak -- lossy NIC, 2% fabric
    // drops, one permanent crash, two random crash/restart victims
    // -- but the workload is collective-bound: every phase runs a
    // NIC-offloaded barrier/bcast/reduce plus a data burst. Fabric
    // drops DO hit collective packets, so this exercises the coll
    // retransmission and recovery machinery under real loss; the run
    // must still terminate with every survivor completing every
    // phase and no collective state left open.
    const std::string topos[] = {"fattree", "torus2d", "mesh3d"};
    for (const std::string &topo : topos) {
        SCOPED_TRACE(topo);
        ExperimentConfig cfg = chaosCfg(topo, true);
        // Collectives run much faster than the synthetic soak, so
        // pull the crash schedule into the collective-bound window.
        cfg.nodeFault.crashes.clear();
        NodeFault permanent;
        permanent.node = 2;
        permanent.crashAt = 12000;
        cfg.nodeFault.crashes.push_back(permanent);
        cfg.nodeFault.randomCrashFrom = 16000;
        cfg.nodeFault.randomCrashSpan = 20000;
        cfg.nodeFault.randomRestartAfter = 4000;
        cfg.coll.offload = true;
        cfg.coll.timeout = 300;
        cfg.coll.maxTimeout = 2400;
        cfg.coll.maxRetries = 4;
        cfg.coll.probeTimeout = 600;
        cfg.coll.maxProbes = 3;

        Experiment exp(cfg);
        CollectiveParams cp;
        cp.phases = 60;
        cp.dataMsgs = 2;
        for (NodeId n = 0; n < exp.numNodes(); ++n)
            exp.setWorkload(n, std::make_unique<CollectiveWorkload>(
                                   exp.proc(n), exp.msg(n),
                                   exp.barrier(), exp.numNodes(), cp,
                                   cfg.seed));

        const Cycle budget = 6000000;
        Cycle ran = exp.runUntilDone(budget);
        if (!exp.allDone()) {
            for (NodeId n = 0; n < exp.numNodes(); ++n) {
                auto *w = dynamic_cast<CollectiveWorkload *>(
                    exp.workload(n));
                CollEngine *eng = exp.collEngine(n);
                std::fprintf(
                    stderr,
                    "node %d crashed=%d done=%d phase=%d pending=%d "
                    "excused=%d open=%d backlog=%d allSent=%d\n",
                    n, int(exp.nodeCrashedEver(n)), int(w->done()),
                    w->phase(), int(eng->localPending()),
                    int(eng->excusedNode()), eng->openCollectives(),
                    exp.msg(n).backlog(),
                    int(exp.msg(n).allSent()));
            }
        }
        ASSERT_TRUE(exp.allDone())
            << "collective chaos soak wedged after " << ran;
        EXPECT_LT(ran, budget);
        EXPECT_EQ(exp.nodeCrashes(), 3u);
        for (NodeId n = 0; n < exp.numNodes(); ++n) {
            if (exp.nodeCrashedEver(n))
                continue;
            auto *w =
                dynamic_cast<CollectiveWorkload *>(exp.workload(n));
            ASSERT_NE(w, nullptr);
            EXPECT_EQ(w->collectivesDone(), 60u) << "node " << n;
        }

        // Under 2% fabric drops the collective layer had to retry.
        std::uint64_t retx = 0;
        exp.runFor(80000); // drain recovery traffic
        for (NodeId n = 0; n < exp.numNodes(); ++n) {
            CollEngine *eng = exp.collEngine(n);
            ASSERT_NE(eng, nullptr);
            retx += eng->retransmissions();
            EXPECT_EQ(eng->openCollectives(), 0) << "node " << n;
            EXPECT_EQ(eng->entered(),
                      eng->localCompleted() + eng->localAbandoned())
                << "node " << n;
        }
        EXPECT_GT(retx, 0u);
        expectNoStateAimedAtDeadNodes(exp);
        exp.audit()->finish();
    }
}

//===------------------------------------------------------------===//
// Determinism: identical seeded runs, byte-identical reports
//===------------------------------------------------------------===//

TEST(ChaosDeterminism, SeededRunsProduceByteIdenticalJsonReports)
{
    std::array<std::string, 2> dumps;
    std::array<std::uint64_t, 2> delivered{};
    for (int run = 0; run < 2; ++run) {
        DeliveryLog log;
        std::unique_ptr<Experiment> exp;
        runChaos("torus2d", true, 120000, log, exp);
        RunReport rep("chaos");
        exp->fillReport(rep);
        std::string path = ::testing::TempDir() +
                           "nifdy_chaos_rep" + std::to_string(run) +
                           ".json";
        rep.writeJson(path);
        dumps[static_cast<std::size_t>(run)] = slurp(path);
        delivered[static_cast<std::size_t>(run)] =
            exp->packetsDelivered();
        std::remove(path.c_str());
    }
    EXPECT_FALSE(dumps[0].empty());
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(delivered[0], delivered[1]);
}

//===------------------------------------------------------------===//
// Crash without restart: the grace path terminates the run
//===------------------------------------------------------------===//

TEST(ChaosGrace, CrashWithoutRestartTerminatesEarly)
{
    ExperimentConfig cfg;
    cfg.topology = "fattree";
    cfg.numNodes = 16;
    cfg.nicKind = NicKind::lossy;
    cfg.msg.packetWords = 6;
    cfg.audit = true;
    cfg.seed = 3;
    cfg.lossy.retxTimeout = 800;
    cfg.lossy.backoffFactor = 2.0;
    cfg.lossy.maxRetxTimeout = 3200;
    cfg.lossy.maxRetries = 6;
    NodeFault f;
    f.node = 5;
    f.crashAt = 12000; // mid-pattern, never restarts
    cfg.nodeFault.crashes.push_back(f);
    cfg.nodeReclaim = 15000;

    Experiment exp(cfg);
    CShiftBoard board(exp.numNodes());
    CShiftParams cp;
    cp.wordsPerPair = 40;
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<CShiftWorkload>(
                               exp.proc(n), exp.msg(n),
                               exp.barrier(), exp.numNodes(), cp,
                               board, 1));

    const Cycle budget = 4000000;
    Cycle ran = exp.runUntilDone(budget);

    // The workload cannot complete (node 5's shifts are gone), yet
    // the run must terminate long before the cycle budget via the
    // no-progress grace path instead of spinning.
    EXPECT_LT(ran, budget);
    EXPECT_TRUE(exp.nic(5).crashed());
    EXPECT_GT(exp.totalDeadPeers(), 0);
    expectNoStateAimedAtDeadNodes(exp);

    // Zero leaked pool packets: everything the dead node black-holed
    // or live peers abandoned was released back to the pool. Only
    // the stalled live senders' staged state may remain; drain it by
    // construction -- nothing is in flight once the grace path has
    // declared no progress and every aimed-at-dead queue was purged.
    EXPECT_TRUE(exp.drained());
    EXPECT_EQ(exp.pool().live(), 0u);
}

//===------------------------------------------------------------===//
// Receiver restart mid-bulk-dialog: reject, then re-establish
//===------------------------------------------------------------===//

TEST(ChaosEpoch, ReceiverRestartMidBulkReestablishesDialog)
{
    // Long per-pair transfers force bulk dialogs; node 2 (receiver
    // of node 1's stream) dies mid-dialog and comes back almost
    // immediately, so the sender's in-flight window and the old
    // incarnation's acks are still in the fabric when the new
    // incarnation answers with its bumped epoch.
    ExperimentConfig cfg;
    cfg.topology = "fattree";
    cfg.numNodes = 16;
    cfg.nicKind = NicKind::lossy;
    cfg.msg.packetWords = 6;
    cfg.audit = true;
    cfg.seed = 4;
    cfg.lossy.retxTimeout = 600;
    cfg.lossy.backoffFactor = 2.0;
    cfg.lossy.maxRetxTimeout = 4800;
    cfg.lossy.maxRetries = 0; // unbounded: nobody is written off
    NodeFault f;
    f.node = 2;
    f.crashAt = 6000;
    f.restartAt = 6100; // back before the fabric drains
    cfg.nodeFault.crashes.push_back(f);
    // Generous: nobody is genuinely silent inside the observation
    // window, so reclaim must not fire at all.
    cfg.nodeReclaim = 200000;

    Experiment exp(cfg);
    DeliveryLog log;
    exp.audit()->add(std::make_unique<DeliveryRecorder>(&log));
    CShiftBoard board(exp.numNodes());
    CShiftParams cp;
    cp.wordsPerPair = 2000; // well past the crash cycle
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<CShiftWorkload>(
                               exp.proc(n), exp.msg(n),
                               exp.barrier(), exp.numNodes(), cp,
                               board, 1));

    exp.runFor(7000); // past crash + restart
    ASSERT_TRUE(exp.nodeCrashedEver(2));
    ASSERT_FALSE(exp.nic(2).crashed());
    const std::pair<NodeId, NodeId> pair21{2, 1};
    std::size_t deliveredBefore = log.flows[pair21].size();

    // A bounded observation window: the pattern as a whole cannot
    // finish (the restarted node's application state is gone, by
    // design), but inside this window node 1 must recover its
    // stream into the new incarnation.
    exp.runFor(50000);

    // The epoch/dialog check fired: the cold incarnation rejected
    // in-flight bulk traffic (unknown dialog) and stale acks from
    // the old incarnation were refused, tearing the dialog down...
    EXPECT_GT(totalEpochRejects(exp), 0u);
    EXPECT_GT(totalDialogTeardowns(exp), 0u);

    // ...and then the dialog was re-established cleanly: node 1
    // kept streaming into the new incarnation, nobody wrote anyone
    // off, and no stale protocol state survived.
    EXPECT_GT(log.flows[pair21].size(), deliveredBefore);
    EXPECT_EQ(exp.totalDeadPeers(), 0);
    auto *sender = dynamic_cast<NifdyNic *>(&exp.nic(1));
    ASSERT_NE(sender, nullptr);
    EXPECT_FALSE(sender->isPeerDead(2));
    expectNoStateAimedAtDeadNodes(exp);
}

//===------------------------------------------------------------===//
// Plan parsing and schedule determinism
//===------------------------------------------------------------===//

TEST(NodeFaultPlanTest, ParseCompileDeterministic)
{
    Config conf;
    conf.set("node.crash", std::string("3@20000+5000,5@30000"));
    conf.set("node.randomCrashes", 2L);
    conf.set("node.crashFrom", 10000L);
    conf.set("node.crashSpan", 20000L);
    conf.set("node.restartAfter", 4000L);
    conf.set("node.seed", 7L);

    NodeFaultPlan plan = NodeFaultPlan::fromConfig(conf);
    plan.validate();
    EXPECT_TRUE(plan.active());
    ASSERT_EQ(plan.crashes.size(), 2u);
    EXPECT_EQ(plan.crashes[0].node, 3);
    EXPECT_EQ(plan.crashes[0].crashAt, 20000u);
    EXPECT_EQ(plan.crashes[0].restartAt, 25000u);
    EXPECT_EQ(plan.crashes[1].restartAt, 0u);

    auto a = plan.compile(16, 1);
    auto b = plan.compile(16, 1);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    std::vector<bool> seen(16, false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].node, b[i].node);
        EXPECT_EQ(a[i].crashAt, b[i].crashAt);
        EXPECT_EQ(a[i].restartAt, b[i].restartAt);
        EXPECT_FALSE(seen.at(static_cast<std::size_t>(a[i].node)))
            << "node crashed twice in one compiled schedule";
        seen.at(static_cast<std::size_t>(a[i].node)) = true;
        if (i > 0) {
            EXPECT_GE(a[i].crashAt, a[i - 1].crashAt);
        }
    }
}

} // namespace
} // namespace nifdy
