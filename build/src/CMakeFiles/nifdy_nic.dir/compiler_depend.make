# Empty compiler generated dependencies file for nifdy_nic.
# This may be replaced when dependencies are built.
