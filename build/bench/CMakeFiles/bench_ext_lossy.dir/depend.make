# Empty dependencies file for bench_ext_lossy.
# This may be replaced when dependencies are built.
