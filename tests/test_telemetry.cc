/**
 * @file
 * Tests for the observability layer (DESIGN.md section 8): the JSON
 * writer, run reports, the packet-lifecycle tracer (sampling, event
 * budget, non-perturbation) and periodic metric snapshots.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "sim/json.hh"
#include "sim/report.hh"
#include "sim/stats.hh"
#include "traffic/synthetic.hh"

namespace nifdy
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOf(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/** A small traced/metered heavy run; returns packets delivered and
 * reports the tracer's output path and counters via out-params. */
std::uint64_t
runSmall(ExperimentConfig cfg, std::string *tracePath = nullptr,
         std::uint64_t *recorded = nullptr,
         std::uint64_t *dropped = nullptr)
{
    cfg.topology = "mesh2d";
    cfg.numNodes = 16;
    cfg.nicKind = NicKind::nifdy;
    cfg.msg.packetWords = 8;
    Experiment exp(cfg);
    for (NodeId n = 0; n < exp.numNodes(); ++n)
        exp.setWorkload(n, std::make_unique<SyntheticWorkload>(
                               exp.proc(n), exp.msg(n), exp.barrier(),
                               exp.numNodes(),
                               SyntheticParams::heavy(), 1));
    exp.runFor(20000);
    if (exp.tracer()) {
        if (tracePath)
            *tracePath = exp.tracer()->path();
        if (recorded)
            *recorded = exp.tracer()->eventsRecorded();
        if (dropped)
            *dropped = exp.tracer()->eventsDropped();
    }
    return exp.packetsDelivered();
}

TEST(Telemetry, JsonWriterStructureAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", "a\"b\\c\n\t");
    w.field("i", std::int64_t(-3));
    w.field("u", std::uint64_t(7));
    w.field("d", 1.5);
    w.field("t", true);
    w.key("arr");
    w.beginArray();
    w.value(1);
    w.valueNull();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"i\":-3,\"u\":7,"
              "\"d\":1.5,\"t\":true,\"arr\":[1,null]}");
    EXPECT_EQ(JsonWriter::escape("ctrl\x01"), "ctrl\\u0001");
    EXPECT_EQ(JsonWriter::numStr(0.25), "0.25");
}

TEST(Telemetry, RunReportJsonShape)
{
    RunReport rep("unit_test");
    rep.echoConfig("nodes", "16");
    rep.addMetric("run.goodput", 0.5);
    rep.addMetric("run.cycles", std::uint64_t(100));
    rep.addNote("hello");
    Table t("demo");
    t.header({"a", "b"});
    t.row({"1", "2"});
    rep.addTable(t);

    std::string j = rep.json();
    EXPECT_NE(j.find("\"schema\":\"nifdy-report-1\""),
              std::string::npos);
    EXPECT_NE(j.find("\"tool\":\"unit_test\""), std::string::npos);
    EXPECT_NE(j.find("\"nodes\":\"16\""), std::string::npos);
    EXPECT_NE(j.find("\"run.goodput\":0.5"), std::string::npos);
    EXPECT_NE(j.find("\"run.cycles\":100"), std::string::npos);
    EXPECT_NE(j.find("\"notes\":[\"hello\"]"), std::string::npos);
    EXPECT_NE(j.find("\"title\":\"demo\""), std::string::npos);
}

#if NIFDY_TRACE_ENABLED

TEST(Telemetry, TracedRunWritesBalancedChains)
{
    ExperimentConfig cfg;
    cfg.trace.path = ::testing::TempDir() + "nifdy_t1_trace.json";
    std::string path;
    std::uint64_t recorded = 0;
    std::uint64_t delivered = runSmall(cfg, &path, &recorded);
    EXPECT_GT(delivered, 0u);
    ASSERT_FALSE(path.empty());
    EXPECT_GT(recorded, 0u);

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("\"schema\":\"nifdy-trace-1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"clockDomain\":\"cycles\""),
              std::string::npos);
    std::size_t begins = countOf(doc, "\"ph\":\"b\"");
    std::size_t ends = countOf(doc, "\"ph\":\"e\"");
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    EXPECT_NE(doc.find("nic.packet.send"), std::string::npos);
    EXPECT_NE(doc.find("nic.packet.deliver"), std::string::npos);
    EXPECT_NE(doc.find("router.packet.hop"), std::string::npos);
}

TEST(Telemetry, SampleRateZeroRecordsNoEvents)
{
    ExperimentConfig cfg;
    cfg.trace.path = ::testing::TempDir() + "nifdy_t2_trace.json";
    cfg.trace.sampleRate = 0.0;
    std::uint64_t recorded = ~std::uint64_t(0);
    runSmall(cfg, nullptr, &recorded);
    EXPECT_EQ(recorded, 0u);
}

TEST(Telemetry, EventBudgetBoundsTheBuffer)
{
    ExperimentConfig cfg;
    cfg.trace.path = ::testing::TempDir() + "nifdy_t3_trace.json";
    cfg.trace.maxEvents = 64;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    runSmall(cfg, nullptr, &recorded, &dropped);
    EXPECT_LE(recorded, 64u);
    EXPECT_GT(dropped, 0u);
}

TEST(Telemetry, TracingDoesNotPerturbTheRun)
{
    ExperimentConfig plain;
    std::uint64_t base = runSmall(plain);

    ExperimentConfig traced;
    traced.trace.path = ::testing::TempDir() + "nifdy_t4_trace.json";
    EXPECT_EQ(runSmall(traced), base);

    ExperimentConfig sampled;
    sampled.trace.path = ::testing::TempDir() + "nifdy_t5_trace.json";
    sampled.trace.sampleRate = 0.25;
    EXPECT_EQ(runSmall(sampled), base);
}

#endif // NIFDY_TRACE_ENABLED

TEST(Telemetry, MetricsSnapshotsAreJsonl)
{
    ExperimentConfig cfg;
    cfg.metrics.path = ::testing::TempDir() + "nifdy_metrics.jsonl";
    cfg.metrics.interval = 1000;
    std::uint64_t delivered = runSmall(cfg);
    EXPECT_GT(delivered, 0u);

    std::istringstream in(slurp(cfg.metrics.path));
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NE(line.find("\"schema\":\"nifdy-metrics-1\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"cycle\":"), std::string::npos);
        EXPECT_NE(line.find("run.goodput"), std::string::npos);
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    // One snapshot per interval over 20k cycles, plus the final one.
    EXPECT_GE(lines, 10u);
    EXPECT_LE(lines, 30u);
}

TEST(Telemetry, DistributionEmptyIsAllZeros)
{
    Distribution d("t.empty");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 0.0);
}

TEST(Telemetry, DistributionSingleSampleIsEveryPercentile)
{
    Distribution d("t.single");
    d.sample(42);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.min(), 42u);
    EXPECT_EQ(d.max(), 42u);
    EXPECT_DOUBLE_EQ(d.mean(), 42.0);
    // Clamped to the observed [min, max]: with one sample, every
    // quantile is that sample.
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 42.0);
}

TEST(Telemetry, DistributionPercentileExtremesAndMonotonicity)
{
    Distribution d("t.ramp");
    for (std::uint64_t v = 1; v <= 100; ++v)
        d.sample(v);
    // p100 is exact (interpolation clamps to the observed max); p0
    // is a bucket estimate bounded below by the observed min.
    // Interior quantiles must stay ordered and in range.
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    double p0 = d.percentile(0.0);
    double p50 = d.percentile(0.50);
    double p95 = d.percentile(0.95);
    double p99 = d.percentile(0.99);
    EXPECT_LE(1.0, p0);
    EXPECT_LE(p0, p50);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, 100.0);
}

TEST(Telemetry, DistributionMergeWithEmptyIsIdentity)
{
    Distribution d("t.full");
    d.sample(7);
    d.sample(9000);
    Distribution empty("t.none");
    d.merge(empty);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_EQ(d.sum(), 9007u);
    EXPECT_EQ(d.min(), 7u);
    EXPECT_EQ(d.max(), 9000u);

    // The other direction: merging into an empty distribution is a
    // copy of the counts, min included (0 must not leak in as min).
    Distribution fresh("t.fresh");
    fresh.merge(d);
    EXPECT_EQ(fresh.count(), 2u);
    EXPECT_EQ(fresh.sum(), 9007u);
    EXPECT_EQ(fresh.min(), 7u);
    EXPECT_EQ(fresh.max(), 9000u);
    EXPECT_GE(fresh.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(fresh.percentile(1.0), 9000.0);
}

TEST(Telemetry, DistributionMergeCombinesExactly)
{
    Distribution a("t.a");
    Distribution b("t.b");
    for (std::uint64_t v : {1u, 2u, 3u})
        a.sample(v);
    for (std::uint64_t v : {100u, 200u})
        b.sample(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.sum(), 306u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 200u);
}

TEST(Telemetry, TimeSeriesEmissionOrdering)
{
    TimeSeries ts("t.series", 2, 100);
    EXPECT_TRUE(ts.due(0));
    std::size_t recorded = 0;
    for (Cycle now = 0; now < 1000; ++now) {
        if (!ts.due(now))
            continue;
        ts.record(now, {std::uint32_t(now), std::uint32_t(recorded)});
        ++recorded;
    }
    // One row per interval, stamped in strictly increasing time.
    EXPECT_EQ(ts.rows(), 10u);
    for (std::size_t i = 0; i < ts.rows(); ++i) {
        EXPECT_EQ(ts.row(i).size(), 2u);
        EXPECT_EQ(ts.rowTime(i), Cycle(i * 100));
        if (i > 0) {
            EXPECT_GT(ts.rowTime(i), ts.rowTime(i - 1));
        }
    }
    // due() stays false until the next interval boundary.
    EXPECT_FALSE(ts.due(999));
    EXPECT_TRUE(ts.due(1000));

    // reset() drops the rows and rearms the clock at zero.
    ts.reset();
    EXPECT_EQ(ts.rows(), 0u);
    EXPECT_TRUE(ts.due(0));
}

} // namespace
} // namespace nifdy
