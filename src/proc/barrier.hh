/**
 * @file
 * Global barrier facade with two backends.
 *
 * Software (default): a zero-message oracle with a configurable
 * release latency, modeling the CM-5 control network used by
 * bulk-synchronous workloads and by the Strata-style optimized
 * barriers of [BK94].
 *
 * NIC offload (coll.offload=nic): arrive/released delegate to each
 * node's CollEngine (src/coll), which runs the barrier as collective
 * packets combined in the NIC step path; the release latency is then
 * whatever the fabric delivers, which is the quantity bench_ext_coll
 * measures against this software baseline.
 */

#ifndef NIFDY_PROC_BARRIER_HH
#define NIFDY_PROC_BARRIER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace nifdy
{

class CollEngine;

class Barrier
{
  public:
    /**
     * @param numNodes participants
     * @param latency cycles between the last arrival and release
     *                (software backend only)
     */
    explicit Barrier(int numNodes, Cycle latency = 100);

    /**
     * Attach node @p n's NIC collective engine. Once any engine is
     * attached, every node must have one and arrive()/released()
     * delegate to them; the software oracle fields below go unused.
     */
    void attachEngine(NodeId n, CollEngine *eng);

    /** Node @p n's engine (nullptr in software mode). */
    CollEngine *engine(NodeId n) const
    {
        return engines_.empty() ? nullptr : engines_[n];
    }

    /** Is the NIC-offload backend active? */
    bool offloaded() const { return !engines_.empty(); }

    /** Node @p n arrives at the current barrier generation. */
    void arrive(NodeId n, Cycle now);

    /** Has node @p n arrived at a barrier it is not yet past? */
    bool arrived(NodeId n) const;

    /** May node @p n proceed past the barrier it arrived at? */
    bool released(NodeId n, Cycle now);

    /**
     * Permanently excuse node @p n (it crashed): it counts as
     * arrived at this and every later generation, so the survivors'
     * barriers keep releasing. A restarted node stays excused -- it
     * rejoins as a free-runner that no barrier ever blocks.
     */
    void excuse(NodeId n, Cycle now);

    /** Is node @p n permanently excused? */
    bool excused(NodeId n) const { return excused_[n] != 0; }

    /** Completed barrier episodes (software backend). */
    int generation() const { return generation_; }

    Cycle latency() const { return latency_; }

  private:
    int numNodes_;
    Cycle latency_;
    int generation_ = 0;
    int arrivedCount_ = 0;
    Cycle releaseAt_ = neverCycle;
    /** Generation at which each node last arrived. */
    std::vector<int> nodeGen_;
    /** Permanently excused (crashed) nodes. Flat bytes, not
     * vector<bool>: the per-cycle released() polls stay branch-free
     * loads. */
    std::vector<std::uint8_t> excused_;
    int excusedCount_ = 0;
    /** Per-node collective engines; empty = software backend. */
    std::vector<CollEngine *> engines_;
};

} // namespace nifdy

#endif // NIFDY_PROC_BARRIER_HH
