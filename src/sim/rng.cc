#include "sim/rng.hh"

#include "sim/log.hh"

namespace nifdy
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed so distinct streams are
    // decorrelated even with adjacent ids.
    std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 1);
    for (auto &s : s_)
        s = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panic_if(bound == 0, "Rng::nextBounded with zero bound");
    // Rejection sampling to remove modulo bias.
    std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "Rng::range with lo > hi");
    return lo + static_cast<std::int64_t>(
        nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

} // namespace nifdy
