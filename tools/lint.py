#!/usr/bin/env python3
"""Thin compatibility shim: the lint checks live in the nifdylint
package (tools/nifdylint/). Kept so `python3 tools/lint.py` and the
CI lint job keep working unchanged; see `python3 -m nifdylint
--list-rules` (run from tools/) for the full rule set and DESIGN.md
section 10 for the determinism contract the rules enforce."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from nifdylint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
