# Empty dependencies file for lossy_workstations.
# This may be replaced when dependencies are built.
