/**
 * @file
 * Fat tree topology tests: structure of the full 4-ary tree and the
 * CM-5 reduced variant, distances, all-pairs delivery, adaptive
 * upward spreading, and store-and-forward behavior.
 */

#include <gtest/gtest.h>

#include "net/fattree.hh"
#include "netharness.hh"

namespace nifdy
{
namespace
{

TEST(FatTree, FullTreeStructure)
{
    NetworkParams np;
    np.numNodes = 64;
    auto net = makeNetwork("fattree", np);
    auto *ft = dynamic_cast<FatTreeNetwork *>(net.get());
    ASSERT_NE(ft, nullptr);
    EXPECT_EQ(ft->levels(), 3);
    EXPECT_EQ(ft->routersAtLevel(0), 16);
    EXPECT_EQ(ft->routersAtLevel(1), 16);
    EXPECT_EQ(ft->routersAtLevel(2), 16);
    EXPECT_EQ(ft->numRouters(), 48);
}

TEST(FatTree, Cm5ReducedStructure)
{
    NetworkParams np;
    np.numNodes = 64;
    auto net = makeNetwork("cm5", np);
    auto *ft = dynamic_cast<FatTreeNetwork *>(net.get());
    ASSERT_NE(ft, nullptr);
    // Two parents at the first two levels: 16, 8, 4 routers.
    EXPECT_EQ(ft->routersAtLevel(0), 16);
    EXPECT_EQ(ft->routersAtLevel(1), 8);
    EXPECT_EQ(ft->routersAtLevel(2), 4);
    EXPECT_TRUE(net->params().timeSliced);
}

TEST(FatTree, Distances)
{
    NetworkParams np;
    np.numNodes = 64;
    FatTreeNetwork net([&] {
        np.upArity = {4, 4, 4};
        return np;
    }());
    EXPECT_EQ(net.distance(0, 0), 0);
    EXPECT_EQ(net.distance(0, 1), 2);   // same leaf router
    EXPECT_EQ(net.distance(0, 4), 4);   // one level up
    EXPECT_EQ(net.distance(0, 63), 6);  // full height
    EXPECT_EQ(net.maxDistance(), 6);
    EXPECT_GT(net.averageDistance(), 5.0);
}

TEST(FatTree, WrongSizeRejected)
{
    NetworkParams np;
    np.numNodes = 48;
    EXPECT_THROW(makeNetwork("fattree", np), std::runtime_error);
}

TEST(FatTree, AllPairsDelivery16)
{
    NetworkParams np;
    np.numNodes = 16;
    NetHarness h("fattree", np);
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId d = 0; d < 16; ++d)
            if (s != d)
                h.send(s, d);
    h.runUntilQuiet();
    for (NodeId d = 0; d < 16; ++d)
        EXPECT_EQ(h.drainCount(d), 15) << "node " << d;
    EXPECT_EQ(h.pool.live(), 0u);
}

TEST(FatTree, AllPairsDelivery64)
{
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("fattree", np);
    for (NodeId s = 0; s < 64; ++s)
        for (NodeId d = 0; d < 64; ++d)
            if (s != d)
                h.send(s, d);
    h.runUntilQuiet(4000000);
    int total = 0;
    for (NodeId d = 0; d < 64; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 64 * 63);
}

TEST(FatTree, Cm5AllPairsDelivery)
{
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("cm5", np);
    for (NodeId s = 0; s < 64; ++s) {
        h.send(s, (s + 17) % 64);
        h.send(s, (s + 31) % 64, 32, NetClass::reply);
    }
    h.runUntilQuiet(4000000);
    int total = 0;
    for (NodeId d = 0; d < 64; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 128);
    EXPECT_EQ(h.pool.live(), 0u);
}

TEST(FatTree, SafAllPairsDelivery)
{
    NetworkParams np;
    np.numNodes = 16;
    NetHarness h("fattree-saf", np);
    EXPECT_TRUE(h.net->params().storeAndForward);
    EXPECT_GE(h.net->params().bufDepth, 8);
    for (NodeId s = 0; s < 16; ++s)
        for (NodeId d = 0; d < 16; ++d)
            if (s != d)
                h.send(s, d);
    h.runUntilQuiet();
    int total = 0;
    for (NodeId d = 0; d < 16; ++d)
        total += h.drainCount(d);
    EXPECT_EQ(total, 16 * 15);
}

TEST(FatTree, SafSlowerThanCutThrough)
{
    auto timeOne = [](const std::string &topo) {
        NetworkParams np;
        np.numNodes = 64;
        NetHarness h(topo, np);
        h.send(0, 63);
        h.runUntilQuiet();
        return h.kernel.now();
    };
    Cycle ct = timeOne("fattree");
    Cycle saf = timeOne("fattree-saf");
    EXPECT_GT(saf, ct + 20); // whole-packet buffering per hop
}

TEST(FatTree, AdaptiveUpwardSpreadsLoad)
{
    // Many packets from the same source region must use multiple
    // top-level routers.
    NetworkParams np;
    np.numNodes = 64;
    NetHarness h("fattree", np);
    auto *ft = dynamic_cast<FatTreeNetwork *>(h.net.get());
    for (int i = 0; i < 40; ++i)
        for (NodeId s = 0; s < 4; ++s)
            h.send(s, 60 + static_cast<NodeId>(i % 4));
    h.runUntilQuiet(4000000);
    // Top level routers are ids 32..47; count how many moved flits.
    int used = 0;
    for (int r = 32; r < 48; ++r)
        used += ft->router(r).flitsSwitched() > 0 ? 1 : 0;
    EXPECT_GT(used, 4);
    for (NodeId d = 60; d < 64; ++d)
        h.drainCount(d);
}

TEST(FatTree, SixteenAndTwoFiftySixNodesWork)
{
    for (int nodes : {16, 256}) {
        NetworkParams np;
        np.numNodes = nodes;
        NetHarness h("fattree", np);
        for (NodeId s = 0; s < nodes; ++s)
            h.send(s, (s + nodes / 2) % nodes);
        h.runUntilQuiet(4000000);
        int total = 0;
        for (NodeId d = 0; d < nodes; ++d)
            total += h.drainCount(d);
        EXPECT_EQ(total, nodes) << nodes << " nodes";
    }
}

TEST(FatTree, ScalarLatencyShorterThanMesh)
{
    // Table 3 sanity: the fat tree's round trip at max distance is
    // far below the mesh's.
    auto lat = [](const std::string &topo, NodeId dst) {
        NetworkParams np;
        np.numNodes = 64;
        NetHarness h(topo, np);
        h.send(0, dst);
        h.runUntilQuiet();
        Cycle t = h.kernel.now();
        h.drainCount(dst);
        return t;
    };
    EXPECT_LT(lat("fattree", 63), lat("mesh2d", 63));
}

} // namespace
} // namespace nifdy
