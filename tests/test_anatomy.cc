/**
 * @file
 * Latency-anatomy tests: the conservation invariant (per-cause
 * cycles sum to end-to-end latency exactly), attribution under
 * faults and chaos, sampling, determinism, and non-perturbation
 * (an anatomy-on run delivers exactly what an anatomy-off run does).
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hh"
#include "sim/anatomy.hh"
#include "traffic/synthetic.hh"

namespace nifdy
{
namespace
{

ExperimentConfig
anatomyCfg(NicKind kind, std::uint64_t seed = 1)
{
    ExperimentConfig cfg;
    cfg.topology = "mesh2d";
    cfg.numNodes = 16;
    cfg.nicKind = kind;
    cfg.msg.packetWords = 8;
    cfg.seed = seed;
    cfg.audit = true;
    cfg.anatomy.enabled = true;
    return cfg;
}

std::unique_ptr<Experiment>
runHeavy(const ExperimentConfig &cfg, Cycle cycles = 20000)
{
    auto exp = std::make_unique<Experiment>(cfg);
    for (NodeId n = 0; n < exp->numNodes(); ++n)
        exp->setWorkload(n, std::make_unique<SyntheticWorkload>(
                                exp->proc(n), exp->msg(n),
                                exp->barrier(), exp->numNodes(),
                                SyntheticParams::heavy(), 1));
    exp->runFor(cycles);
    return exp;
}

/** Every cycle accounted for: per-cause totals tile the end-to-end
 * latency sum exactly (the tentpole invariant, checked mid-run by
 * the audit layer and here once more on the final aggregates). */
void
expectConservation(const Anatomy &an)
{
    EXPECT_GT(an.packets(), 0u);
    EXPECT_EQ(an.totalAttributed(), an.totalLatency());
    std::uint64_t byCause = 0;
    for (int c = 0; c < numStallCauses; ++c)
        byCause += an.totalCycles(static_cast<StallCause>(c));
    EXPECT_EQ(byCause, an.totalLatency());
    // Per-node totals tile the same sum a second way.
    std::uint64_t byNode = 0;
    std::uint64_t nodeLat = 0;
    for (NodeId n = 0; n < NodeId(an.numNodes()); ++n) {
        for (std::uint64_t v : an.nodeTotals(n))
            byNode += v;
        nodeLat += an.nodeLatency(n);
    }
    EXPECT_EQ(byNode, an.totalLatency());
    EXPECT_EQ(nodeLat, an.totalLatency());
    // And the e2e distribution agrees with the running sum.
    EXPECT_EQ(an.e2e().sum(), an.totalLatency());
    EXPECT_EQ(an.e2e().count(), an.packets());
}

TEST(Anatomy, ConservationHoldsOnNifdy)
{
    auto exp = runHeavy(anatomyCfg(NicKind::nifdy));
    ASSERT_NE(exp->anatomy(), nullptr);
    expectConservation(*exp->anatomy());
    // NIFDY's protocol stalls are visible: some latency lands on
    // ack wait or OPT occupancy, and nothing on retransmissions.
    const Anatomy &an = *exp->anatomy();
    EXPECT_GT(an.totalCycles(StallCause::ackWait) +
                  an.totalCycles(StallCause::optSlot) +
                  an.totalCycles(StallCause::optCap),
              0u);
    EXPECT_EQ(an.totalCycles(StallCause::retxBackoff), 0u);
    EXPECT_EQ(an.totalCycles(StallCause::epochRecovery), 0u);
}

TEST(Anatomy, ConservationHoldsOnPlainNic)
{
    auto exp = runHeavy(anatomyCfg(NicKind::none));
    ASSERT_NE(exp->anatomy(), nullptr);
    expectConservation(*exp->anatomy());
    // The plain NIC has no protocol: its queueing is all injection
    // backpressure, never NIFDY causes.
    const Anatomy &an = *exp->anatomy();
    EXPECT_EQ(an.totalCycles(StallCause::ackWait), 0u);
    EXPECT_EQ(an.totalCycles(StallCause::optSlot), 0u);
    EXPECT_EQ(an.totalCycles(StallCause::optCap), 0u);
    EXPECT_EQ(an.totalCycles(StallCause::windowClosed), 0u);
    EXPECT_GT(an.totalCycles(StallCause::injectStall), 0u);
}

TEST(Anatomy, ConservationHoldsUnderFivePercentFaultRate)
{
    ExperimentConfig cfg = anatomyCfg(NicKind::lossy, 3);
    cfg.fault.dropProb = 0.05;
    cfg.lossy.retxTimeout = 1200;
    cfg.lossy.backoffFactor = 2.0;
    cfg.lossy.maxRetxTimeout = 9600;
    auto exp = runHeavy(cfg, 40000);
    ASSERT_NE(exp->anatomy(), nullptr);
    const Anatomy &an = *exp->anatomy();
    expectConservation(an);
    // A 5% in-fabric drop rate makes recovery visible in the blame:
    // delivered packets that were dropped at least once spent time
    // in retransmission backoff.
    EXPECT_GT(an.totalCycles(StallCause::retxBackoff), 0u);
    // Packets still in flight when the window closes are unfinished
    // lifecycles; finish() (idempotent, also run by the harness
    // teardown) discards them rather than sampling partial books.
    EXPECT_GT(an.openRecords(), 0u);
    exp->anatomy()->finish(exp->kernel().now());
    EXPECT_GT(an.discarded(), 0u);
    EXPECT_EQ(an.openRecords(), 0u);
}

TEST(Anatomy, ChaosSoakConservesAndDiscardsCrashVictims)
{
    ExperimentConfig cfg = anatomyCfg(NicKind::lossy, 2);
    cfg.fault.dropProb = 0.02;
    cfg.lossy.retxTimeout = 1200;
    cfg.lossy.backoffFactor = 2.0;
    cfg.lossy.maxRetxTimeout = 9600;
    cfg.lossy.jitterFrac = 0.25;
    cfg.lossy.maxRetries = 8;
    NodeFault permanent;
    permanent.node = 2;
    permanent.crashAt = 15000;
    cfg.nodeFault.crashes.push_back(permanent);
    NodeFault bouncer;
    bouncer.node = 5;
    bouncer.crashAt = 20000;
    bouncer.restartAt = 26000;
    cfg.nodeFault.crashes.push_back(bouncer);
    cfg.nodeReclaim = 12000;
    auto exp = runHeavy(cfg, 60000);
    ASSERT_NE(exp->anatomy(), nullptr);
    const Anatomy &an = *exp->anatomy();
    // The audit's conservation checker ran every cycle of the soak;
    // re-check the final books and that the crash victims' pending
    // lifecycles were discarded rather than mis-attributed.
    expectConservation(an);
    EXPECT_GT(exp->nodeCrashes(), 0u);
    std::uint64_t open = an.openRecords();
    exp->anatomy()->finish(exp->kernel().now());
    EXPECT_GT(an.discarded(), 0u)
        << "open=" << open << " sent=" << exp->packetsSent()
        << " delivered=" << exp->packetsDelivered()
        << " attributed=" << an.packets();
}

TEST(Anatomy, SeededRunsAreDeterministic)
{
    auto a = runHeavy(anatomyCfg(NicKind::nifdy, 9));
    auto b = runHeavy(anatomyCfg(NicKind::nifdy, 9));
    ASSERT_NE(a->anatomy(), nullptr);
    ASSERT_NE(b->anatomy(), nullptr);
    EXPECT_EQ(a->anatomy()->packets(), b->anatomy()->packets());
    EXPECT_EQ(a->anatomy()->totalLatency(),
              b->anatomy()->totalLatency());
    for (int c = 0; c < numStallCauses; ++c)
        EXPECT_EQ(a->anatomy()->totalCycles(
                      static_cast<StallCause>(c)),
                  b->anatomy()->totalCycles(static_cast<StallCause>(c)))
            << stallCauseSlugs[c];
}

TEST(Anatomy, SampleRateAttributesASubset)
{
    auto full = runHeavy(anatomyCfg(NicKind::nifdy));
    ExperimentConfig cfg = anatomyCfg(NicKind::nifdy);
    cfg.anatomy.sampleRate = 0.25;
    auto some = runHeavy(cfg);
    ASSERT_NE(full->anatomy(), nullptr);
    ASSERT_NE(some->anatomy(), nullptr);
    // Same traffic either way (sampling only thins the bookkeeping).
    EXPECT_EQ(full->packetsDelivered(), some->packetsDelivered());
    EXPECT_GT(some->anatomy()->packets(), 0u);
    EXPECT_LT(some->anatomy()->packets(), full->anatomy()->packets());
    expectConservation(*some->anatomy());
}

TEST(Anatomy, AttributionDoesNotPerturbTheRun)
{
    ExperimentConfig on = anatomyCfg(NicKind::nifdy);
    ExperimentConfig off = on;
    off.anatomy.enabled = false;
    off.audit = false;
    auto a = runHeavy(on);
    auto b = runHeavy(off);
    EXPECT_EQ(b->anatomy(), nullptr);
    EXPECT_EQ(a->packetsDelivered(), b->packetsDelivered());
    EXPECT_EQ(a->wordsDelivered(), b->wordsDelivered());
    EXPECT_EQ(a->mergedLatency().sum(), b->mergedLatency().sum());
    ASSERT_NE(a->anatomy(), nullptr);
    expectConservation(*a->anatomy());
}

} // namespace
} // namespace nifdy
