/**
 * @file
 * Campaign result aggregation.
 *
 * Collects the validated nifdy-report-1 documents of completed jobs
 * (plus the terminal state of jobs that exhausted their retries)
 * into one campaign-aggregate-1 JSON document and a comparative
 * stdout table. The aggregate is a pure function of the expanded
 * job list and the per-job worker reports -- never of scheduling
 * order, retry timing, or how often the engine was killed and
 * resumed -- which is what makes the byte-identity resume contract
 * testable: interrupted + resumed and uninterrupted runs must
 * produce the same bytes. Worker metric values are spliced in
 * verbatim (raw number tokens) so no float round-trip can perturb
 * them.
 */

#ifndef NIFDY_CAMPAIGN_AGGREGATE_HH
#define NIFDY_CAMPAIGN_AGGREGATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/jsonin.hh"
#include "sim/table.hh"

namespace nifdy
{

inline constexpr const char *aggregateSchema = "campaign-aggregate-1";

/**
 * Validate a worker report document at @p path: it must parse, be a
 * nifdy-report-1 object, and carry config + metrics objects.
 * Returns "" and fills @p out on success, else a diagnosis.
 */
std::string validateWorkerReport(const std::string &path,
                                 JsonValue *out);

class Aggregate
{
  public:
    Aggregate(std::string campaignName, std::uint64_t specHash);

    /** Record a completed job and its validated report. */
    void addDone(const CampaignJob &job, const JsonValue &report,
                 int fails);

    /** Record a job that exhausted its retries. */
    void addFailed(const CampaignJob &job, int fails,
                   const std::string &lastKind);

    /** The campaign-aggregate-1 document (jobs by index). */
    std::string json() const;

    /**
     * Comparative stdout table: one row per job -- the swept knobs
     * (@p sweptKeys), status, and the headline metrics every bench
     * report carries (delivered packets, goodput, p50/p99 latency)
     * when present.
     */
    Table table(const std::vector<std::string> &sweptKeys) const;

    int doneJobs() const;
    int failedJobs() const;

  private:
    struct Entry
    {
        CampaignJob job;
        bool failed = false;
        int fails = 0;
        std::string lastKind;
        JsonValue report;
    };

    /** Entries sorted by job index (insertion keeps order). */
    std::vector<Entry> entries_;
    std::string name_;
    std::uint64_t specHash_;
};

} // namespace nifdy

#endif // NIFDY_CAMPAIGN_AGGREGATE_HH
