/**
 * @file
 * Machine-readable run reports.
 *
 * A RunReport is the single source of truth for what a bench or
 * harness run produced: the stdout tables, the scalar summary
 * metrics (goodput, latency percentiles, fault/retransmission
 * accounting), the config echo, and any recorded time series all
 * live in one object, which renders either as the familiar aligned
 * text (print()) or as a schema-versioned JSON document
 * (writeJson(), the `--json <path>` bench flag). Schema changes bump
 * reportSchema; see DESIGN.md section 8 for the version policy.
 */

#ifndef NIFDY_SIM_REPORT_HH
#define NIFDY_SIM_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/table.hh"

namespace nifdy
{

class Config;
class TimeSeries;

inline constexpr const char *reportSchema = "nifdy-report-1";

/**
 * Write @p content to @p path atomically: write + fsync a
 * pid-unique temporary in the same directory, then rename() over the
 * destination. A reader (or a crash) never observes a truncated
 * file -- it sees either the old bytes or the new bytes, which is
 * what lets the campaign engine treat any unparsable worker report
 * as a worker fault rather than a torn write.
 */
void writeFileAtomic(const std::string &path,
                     const std::string &content);

class RunReport
{
  public:
    /** @p tool names the producing bench/harness binary. */
    explicit RunReport(std::string tool);

    //! @name Content
    //! @{
    /** Echo one config key (taken verbatim into the JSON). */
    void echoConfig(const std::string &key, const std::string &value);
    /** Echo every key of @p conf. */
    void echoConfig(const Config &conf);

    /** Attach a result table (also printed by print()). */
    void addTable(Table table);

    /** Scalar summary metrics; names follow the DESIGN.md section 8
     * taxonomy (component.noun[.verb]). */
    void addMetric(const std::string &name, double v);
    void addMetric(const std::string &name, std::uint64_t v);
    void addMetric(const std::string &name, std::int64_t v);

    /**
     * Host-time figures for the nondeterministic "profile" section
     * (wall-clock nanoseconds, rates). The section is rendered with
     * a leading "nondeterministic": true marker and is excluded by
     * json(false), the byte-identity comparison form; everything
     * deterministic belongs in addMetric instead. See DESIGN.md
     * section 12.
     */
    void addProfile(const std::string &name, double v);
    void addProfile(const std::string &name, std::uint64_t v);

    /** Attach a recorded time series (serialized in full). */
    void addSeries(const TimeSeries &ts);

    /** Free-form note, printed after the tables. */
    void addNote(std::string note);
    //! @}

    //! @name Rendering
    //! @{
    /** Print tables (aligned text, or CSV when @p csv) and notes to
     * stdout through the log funnel. */
    void print(bool csv = false) const;

    /**
     * The JSON document. @p includeProfile false omits the
     * nondeterministic "profile" section -- the form byte-identity
     * comparisons (tests, CI determinism job) must use.
     */
    std::string json(bool includeProfile = true) const;

    /** Write json() to @p path. */
    void writeJson(const std::string &path) const;
    //! @}

    const std::vector<Table> &tables() const { return tables_; }

  private:
    std::string tool_;
    std::map<std::string, std::string> config_;
    /** Metric values pre-rendered as JSON number strings (keeps one
     * map regardless of arithmetic type, deterministic order). */
    std::map<std::string, std::string> metrics_;
    /** Nondeterministic host-time figures (the "profile" section). */
    std::map<std::string, std::string> profile_;
    std::vector<Table> tables_;
    std::vector<std::string> seriesJson_;
    std::vector<std::string> notes_;
};

} // namespace nifdy

#endif // NIFDY_SIM_REPORT_HH
