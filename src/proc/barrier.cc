#include "proc/barrier.hh"

#include "coll/coll.hh"
#include "sim/log.hh"

namespace nifdy
{

Barrier::Barrier(int numNodes, Cycle latency)
    : numNodes_(numNodes), latency_(latency),
      nodeGen_(static_cast<std::size_t>(numNodes), -1),
      excused_(static_cast<std::size_t>(numNodes), 0)
{
    panic_if(numNodes_ < 1, "barrier needs participants");
}

void
Barrier::attachEngine(NodeId n, CollEngine *eng)
{
    panic_if(n < 0 || n >= numNodes_, "barrier: bad node %d", n);
    panic_if(eng == nullptr, "barrier: attachEngine(nullptr)");
    if (engines_.empty())
        engines_.assign(static_cast<std::size_t>(numNodes_), nullptr);
    engines_[static_cast<std::size_t>(n)] = eng;
}

NIFDY_HOT void
Barrier::arrive(NodeId n, Cycle now)
{
    panic_if(n < 0 || n >= numNodes_, "barrier: bad node %d", n);
    if (excused_[n])
        return; // free-runner: virtually arrived already
    if (!engines_.empty()) {
        panic_if(!engines_[n], "barrier: node %d has no engine", n);
        engines_[n]->enter(CollOp::barrier, 0, now);
        return;
    }
    panic_if(nodeGen_[n] >= generation_,
             "node %d arrived twice at barrier generation %d", n,
             generation_);
    nodeGen_[n] = generation_;
    ++arrivedCount_;
    if (arrivedCount_ == numNodes_)
        releaseAt_ = now + latency_;
}

void
Barrier::excuse(NodeId n, Cycle now)
{
    panic_if(n < 0 || n >= numNodes_, "barrier: bad node %d", n);
    if (excused_[n])
        return;
    excused_[n] = 1;
    ++excusedCount_;
    if (!engines_.empty()) {
        // The engine abandons any pending collective and turns into
        // a pure combiner/forwarder; nothing to complete here.
        engines_[n]->setExcused(now);
        return;
    }
    // If the node had not yet arrived at the current generation, it
    // arrives virtually now -- possibly completing the barrier for
    // everyone still waiting on it.
    if (nodeGen_[n] < generation_) {
        ++arrivedCount_;
        if (arrivedCount_ == numNodes_)
            releaseAt_ = now + latency_;
    }
}

NIFDY_HOT bool
Barrier::arrived(NodeId n) const
{
    if (!engines_.empty())
        return engines_[n]->localPending();
    return nodeGen_[n] >= generation_;
}

NIFDY_HOT bool
Barrier::released(NodeId n, Cycle now)
{
    // Excused (crashed) nodes never block and are never blocked.
    if (excused_[n])
        return true;
    if (!engines_.empty())
        return engines_[n]->localReleased();
    // A node that has not arrived at the current generation was
    // released from every earlier one.
    if (nodeGen_[n] < generation_)
        return true;
    if (arrivedCount_ < numNodes_ || now < releaseAt_)
        return false;
    // Everyone is past the release point: the first observer
    // advances the generation; later observers see an older
    // arrival generation and fall through above. Excused nodes are
    // virtually arrived at the new generation from the start.
    generation_ += 1;
    arrivedCount_ = excusedCount_;
    releaseAt_ = neverCycle;
    return true;
}

} // namespace nifdy
