#include "sim/stats.hh"

#include <bit>
#include <sstream>

#include "sim/log.hh"

namespace nifdy
{

void
Distribution::sample(std::uint64_t v)
{
    if (count_ == 0 || v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    ++count_;
    sum_ += v;
    int b = v < 2 ? 0 : std::bit_width(v) - 1;
    if (buckets_.size() <= static_cast<std::size_t>(b))
        buckets_.resize(b + 1, 0);
    ++buckets_[b];
}

std::uint64_t
Distribution::bucket(int b) const
{
    if (b < 0 || static_cast<std::size_t>(b) >= buckets_.size())
        return 0;
    return buckets_[b];
}

void
Distribution::reset()
{
    count_ = sum_ = min_ = max_ = 0;
    buckets_.clear();
}

void
TimeSeries::record(Cycle now, std::vector<std::uint32_t> row)
{
    panic_if(row.size() != static_cast<std::size_t>(width_),
             "TimeSeries row width %zu != %d", row.size(), width_);
    times_.push_back(now);
    rows_.push_back(std::move(row));
    nextSample_ = now + interval_;
}

const std::vector<std::uint32_t> &
TimeSeries::row(std::size_t i) const
{
    return rows_.at(i);
}

Counter &
StatSet::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, Counter(name)).first;
    return it->second;
}

Distribution &
StatSet::distribution(const std::string &name)
{
    auto it = dists_.find(name);
    if (it == dists_.end())
        it = dists_.emplace(name, Distribution(name)).first;
    return it->second;
}

std::vector<const Counter *>
StatSet::counters() const
{
    std::vector<const Counter *> out;
    for (const auto &kv : counters_)
        out.push_back(&kv.second);
    return out;
}

std::vector<const Distribution *>
StatSet::distributions() const
{
    std::vector<const Distribution *> out;
    for (const auto &kv : dists_)
        out.push_back(&kv.second);
    return out;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : dists_) {
        const Distribution &d = kv.second;
        os << kv.first << " count=" << d.count() << " mean=" << d.mean()
           << " min=" << d.min() << " max=" << d.max() << "\n";
    }
    return os.str();
}

} // namespace nifdy
