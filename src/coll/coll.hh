/**
 * @file
 * NIC-resident collective subsystem: barrier, broadcast, and
 * combining reduce over a configurable k-ary tree embedded in the
 * node id space (parent(n) = (n-1)/k), in the style of the
 * Quadrics/Myrinet NIC-based collective protocols.
 *
 * A CollEngine is attached to each Nic (Nic::setCollEngine) and runs
 * entirely in the NIC step path: collective packets (PacketType::coll,
 * ctrlOnly) carry a (collSeq, round, epoch) header; interior engines
 * combine and forward their children's contributions without waking
 * the processor, which only sees enter/exit through the Barrier
 * facade. All three operations share one reduce-shaped protocol:
 * contributions flow up the tree (request class), accepts/releases
 * flow down (reply class); a barrier is a reduce of nothing, a
 * broadcast is a reduce whose released value is the root's.
 *
 * Crash safety (the PR 4 endpoint fault domain composes in):
 *  - contributions retransmit on a seeded jittered exponential
 *    backoff (the PR 2 lossy discipline) until the release arrives;
 *    every retransmission is a freshly allocated clone;
 *  - a parent that stays silent for coll.maxRetries backed-off
 *    rounds is presumed dead and the child re-parents to the next
 *    static ancestor, self-promoting to acting root above node 0;
 *  - a child that stays silent is probed (coll.probeTimeout apart);
 *    live children answer with status packets, and after
 *    coll.maxProbes unanswered probes the subtree is pruned and the
 *    collective completes among survivors with the degraded bit set;
 *  - stale incarnation epochs are rejected and newer ones adopted
 *    (extending the PR 4 epochAdmit discipline to collective state);
 *    a restarted node rejoins as a combiner/forwarder -- and, being
 *    permanently excused, as a free-runner that no collective ever
 *    blocks -- at the next collective sequence number it hears;
 *  - completed collectives leave a bounded tombstone ring so
 *    arbitrarily late contributions are answered with the recorded
 *    release instead of reopening state.
 *
 * See DESIGN.md section 13 for the protocol walkthrough, the
 * recovery state machine, and the coll.* knob table.
 */

#ifndef NIFDY_COLL_COLL_HH
#define NIFDY_COLL_COLL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "sim/ring.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace nifdy
{

class InvariantChecker;

/** The offloaded operations. */
enum class CollOp : std::uint8_t
{
    barrier, //!< synchronization only, no payload
    bcast,   //!< the root's value is released to everyone
    reduce   //!< integer sum of every participant's value
};

const char *collOpName(CollOp op);

/** Wire subkinds of a PacketType::coll packet (Packet::collKind). */
enum class CollKind : std::uint8_t
{
    contrib, //!< child -> parent: combined subtree value (up, request)
    accept,  //!< parent -> child: contribution heard (down, reply)
    release, //!< parent -> child: result, collective over (down, reply)
    probe,   //!< parent -> child: are you alive? (down, reply)
    status   //!< child -> parent: alive, still combining (up, request)
};

/** Runtime knobs (CLI: coll.offload / coll.arity / ...). */
struct CollConfig
{
    /** Master switch (coll.offload=nic). Off = software barrier,
     * byte-identical to pre-collective builds. */
    bool offload = false;
    /** Combining-tree fan-out k; parent(n) = (n-1)/k. */
    int arity = 4;
    /** Initial contribution retransmit timeout, cycles. */
    Cycle timeout = 3000;
    /** Timeout multiplier per retransmission round (>= 1). */
    double backoffFactor = 2.0;
    /** Backoff ceiling in cycles (0 = 16x coll.timeout). */
    Cycle maxTimeout = 0;
    /** Retransmit deadline jitter fraction, [0, 1). */
    double jitterFrac = 0.25;
    /** Unanswered contribution rounds before the parent is presumed
     * dead and the child re-parents up the static ancestor chain. */
    int maxRetries = 6;
    /** Silence gate before an awaited child is probed, and between
     * probes (the collective layer's lastHeard/reclaimTimeout). */
    Cycle probeTimeout = 6000;
    /** Unanswered probes before a silent subtree is pruned. */
    int maxProbes = 4;
    /** Retransmission-jitter RNG seed; 0 = experiment seed. */
    std::uint64_t seed = 0;

    /** Panic on out-of-range values. */
    void validate() const;

    /** Backoff ceiling with the 0 = 16x default applied. */
    Cycle effMaxTimeout() const
    {
        return maxTimeout > 0 ? maxTimeout : 16 * timeout;
    }

    /**
     * Upper bound on the cycles one crash needs to cut through the
     * whole tree (prune budget + re-parent budget per level, both
     * directions); Experiment::runUntilDone extends its no-progress
     * grace to cover it.
     */
    Cycle worstCaseRecovery(int numNodes) const;
};

//! @name Static k-ary tree embedding in the node id space
//! @{
/** Parent of @p n (invalidNode for the root, node 0). */
NodeId collParent(NodeId n, int arity);
/** First child of @p n (children are k*n+1 .. k*n+k). */
NodeId collFirstChild(NodeId n, int arity);
/** Children of @p n that exist in a @p numNodes tree. */
int collNumChildren(NodeId n, int arity, int numNodes);
/** Levels in the tree (1 for a single node). */
int collTreeDepth(int numNodes, int arity);
//! @}

/**
 * Per-node collective engine. The owning Nic pumps it every cycle
 * (timers, probes, retransmissions), drains its outbox with strict
 * injection priority, and routes every delivered PacketType::coll
 * packet into deliver(), which consumes it. The processor side goes
 * through the Barrier facade (enter / localReleased / lastResult).
 */
class CollEngine
{
  public:
    CollEngine(NodeId node, int numNodes, const CollConfig &cfg,
               PacketPool &pool);

    //! @name Processor side (via the Barrier facade)
    //! @{
    /**
     * Enter the next collective with this node's @p value (ignored
     * for barriers; the root's value is the broadcast payload).
     * Excused nodes are free-runners: enter() resolves immediately
     * with a degraded zero result.
     */
    void enter(CollOp op, std::int64_t value, Cycle now);

    /** Is a locally entered collective still unresolved? */
    bool localPending() const { return localSeq_ >= 0; }

    /** May the processor proceed past its last enter()? */
    bool localReleased() const { return localSeq_ < 0; }

    /** Result of the last resolved collective (sum for reduce, the
     * root's value for bcast, participant count for barrier). */
    std::int64_t lastResult() const { return lastResult_; }

    /** Did the last resolved collective complete on a pruned or
     * reshaped tree (a deterministic outcome, never a hang)? */
    bool lastDegraded() const { return lastDegraded_; }

    /**
     * Permanently excuse this node (it crashed): a pending local
     * collective is abandoned, and the engine -- whose soft state a
     * crash wipes, all but this flag -- afterwards acts as a pure
     * combiner/forwarder whose subtrees complete without a local
     * contribution.
     */
    void setExcused(Cycle now);
    bool excusedNode() const { return excused_; }
    //! @}

    //! @name NIC side (called from the owning Nic's step path)
    //! @{
    /** Timers: contribution retransmissions, probes, pruning. */
    void pump(Cycle now);

    /** Next outbox packet for class @p cls (strict priority over
     * the NIC's own traffic), or nullptr. */
    Packet *nextToInject(NetClass cls, Cycle now);

    /** A PacketType::coll packet arrived; the engine consumes it
     * (audit consume/drop + pool release). */
    void deliver(Packet *pkt, Cycle now);

    /** Fail-stop: drop the outbox, wipe every slot (excused_ and
     * the epoch table survive -- peers' epochs are facts). */
    void onCrash(Cycle now);

    /** Cold restart: nothing to rebuild; the engine re-learns open
     * sequences from the packets (and probes) it receives. */
    void onRestart(Cycle now);

    /** No outbox packets and no open collective state. */
    bool idle() const;
    //! @}

    NodeId node() const { return node_; }
    const CollConfig &config() const { return cfg_; }

    //! @name Accounting (metrics / reports / audit)
    //! @{
    std::uint64_t entered() const { return entered_; }
    std::uint64_t localCompleted() const { return localCompleted_; }
    std::uint64_t localAbandoned() const { return localAbandoned_; }
    std::uint64_t degradedCompletions() const { return degraded_; }
    std::uint64_t retransmissions() const { return retx_; }
    std::uint64_t childrenPruned() const { return pruned_; }
    std::uint64_t epochRejects() const { return epochRejects_; }
    std::uint64_t collPacketsSent() const { return packetsSent_; }
    std::uint64_t probesSent() const { return probes_; }
    std::uint64_t tombstoneReplies() const { return tombReplies_; }
    /** Remote-driven slots evicted because the tree ran more than
     * numSlots sequences past this (lagging) node. */
    std::uint64_t slotEvictions() const { return evictions_; }
    /** Open collective slots (audit: must be 0 at end of run). */
    int openCollectives() const;
    //! @}

  private:
    /** One awaited/recorded contributor below us. */
    struct Child
    {
        NodeId node = invalidNode;
        bool expected = false; //!< static child, awaited for completion
        bool got = false;      //!< contribution received (value below)
        bool pruned = false;   //!< presumed dead after maxProbes
        std::int64_t value = 0;
        std::int32_t count = 0;
        bool degraded = false;
        Cycle lastHeard = 0;
        Cycle probeAt = neverCycle;
        int probes = 0;
    };

    /** One open collective. reset() keeps the children capacity so
     * steady-state reuse allocates nothing (InDialog::reset style). */
    struct OpenColl
    {
        bool active = false;
        std::int32_t seq = -1;
        CollOp op = CollOp::barrier;
        bool entered = false; //!< local value folded in
        std::int64_t localValue = 0;
        bool degraded = false;
        bool degradeTraced = false;
        //! @name Upward state
        //! @{
        bool sentUp = false; //!< combined contribution is on its way
        std::int64_t upValue = 0;
        std::int32_t upCount = 0;
        NodeId parent = invalidNode;
        bool actingRoot = false;
        int retries = 0; //!< rounds since the parent last answered
        int attempt = 0; //!< total contribution sends (wire round)
        Cycle retxAt = neverCycle;
        Cycle curTimeout = 0;
        //! @}
        std::vector<Child> children;

        void reset();
    };

    /** Completed collective, kept so late contributions and probes
     * are answered with the recorded release. */
    struct Tombstone
    {
        std::int32_t seq = -1;
        CollOp op = CollOp::barrier;
        std::int64_t result = 0;
        std::int32_t count = 0;
        bool degraded = false;
        /** Our own combined up-contribution, replayed when a live
         * ancestor we abandoned probes for this sequence (the
         * split-tree wedge breaker). */
        std::int64_t upValue = 0;
        std::int32_t upCount = 0;
    };

    OpenColl *findSlot(std::int32_t seq);
    OpenColl *openSlot(std::int32_t seq, CollOp op, Cycle now);
    const Tombstone *findTomb(std::int32_t seq) const;
    Child *findChild(OpenColl &slot, NodeId n);
    Child *recordContributor(OpenColl &slot, NodeId n, Cycle now);

    /** Admit or reject @p pkt by incarnation epoch; adopts newer
     * epochs. False = stale, caller drops. */
    bool epochAdmit(const Packet &pkt);

    /** All awaited static children contributed or pruned, and the
     * local contribution (unless excused) is in: combine and send
     * up, or release at the root. */
    void maybeComplete(OpenColl &slot, Cycle now);

    /** Combine the local value and every received contribution. */
    void combine(OpenColl &slot);

    /** The released result when this node is the (acting) root. */
    std::int64_t rootResult(const OpenColl &slot) const;

    void sendContribution(OpenColl &slot, Cycle now);
    void releaseSlot(OpenColl &slot, std::int64_t result,
                     std::int32_t count, bool degraded, Cycle now);
    void sendReleaseTo(NodeId dst, std::int32_t seq, CollOp op,
                       std::int64_t result, std::int32_t count,
                       bool degraded, Cycle now);
    void markDegraded(OpenColl &slot, Cycle now, const char *why);
    void resolveLocal(std::int64_t result, bool degraded, Cycle now);

    void handleContrib(const Packet &pkt, Cycle now);
    void handleAccept(const Packet &pkt, Cycle now);
    void handleRelease(const Packet &pkt, Cycle now);
    void handleProbe(const Packet &pkt, Cycle now);
    void handleStatus(const Packet &pkt, Cycle now);

    Packet *makePacket(NodeId dst, CollKind kind, std::int32_t seq,
                       CollOp op, Cycle now);
    void queuePacket(Packet *pkt);
    Cycle jittered(Cycle timeout);

    NodeId node_;
    int numNodes_;
    CollConfig cfg_;
    PacketPool &pool_;
    Rng rng_;

    std::vector<OpenColl> slots_;
    std::vector<Tombstone> tombs_; //!< fixed ring, tombHead_ next
    std::size_t tombHead_ = 0;
    /** Newest incarnation epoch seen per peer (epochAdmit). */
    std::vector<std::uint32_t> peerEpoch_;
    /** Outgoing coll packets per net class, drained by the NIC with
     * strict injection priority. */
    Ring<Packet *> outbox_[numNetClasses];

    //! @name Local (processor-facing) state
    //! @{
    std::int32_t nextLocalSeq_ = 0;
    std::int32_t localSeq_ = -1; //!< -1 = nothing pending
    std::int64_t lastResult_ = 0;
    bool lastDegraded_ = false;
    bool excused_ = false;
    //! @}

    //! @name Accounting
    //! @{
    std::uint64_t entered_ = 0;
    std::uint64_t localCompleted_ = 0;
    std::uint64_t localAbandoned_ = 0;
    std::uint64_t degraded_ = 0;
    std::uint64_t retx_ = 0;
    std::uint64_t pruned_ = 0;
    std::uint64_t epochRejects_ = 0;
    std::uint64_t packetsSent_ = 0;
    std::uint64_t probes_ = 0;
    std::uint64_t tombReplies_ = 0;
    std::uint64_t evictions_ = 0;
    //! @}
};

/**
 * Audit checker for the collective discipline: at end of run every
 * engine has resolved every locally entered collective (completed,
 * degraded, or abandoned-by-excuse -- never hanging) and holds no
 * open collective state or undrained outbox packets.
 */
std::unique_ptr<InvariantChecker>
makeCollDisciplineChecker(std::vector<CollEngine *> engines);

} // namespace nifdy

#endif // NIFDY_COLL_COLL_HH
