# Empty dependencies file for bench_fig3_light.
# This may be replaced when dependencies are built.
