#include "net/packet.hh"

#include <sstream>

#include "sim/audit.hh"
#include "sim/log.hh"

namespace nifdy
{

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::scalar:
        return "scalar";
      case PacketType::bulk:
        return "bulk";
      case PacketType::ack:
        return "ack";
      case PacketType::coll:
        return "coll";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << "pkt#" << id << " " << packetTypeName(type) << " " << src
       << "->" << dst << " " << netClassName(netClass) << " "
       << sizeBytes << "B";
    if (type == PacketType::bulk)
        os << " dlg=" << dialog << " seq=" << seq;
    if (type == PacketType::ack) {
        os << " ackSeq=" << ackSeq << " ackDlg=" << ackDialog;
        if (ackGrantsBulk)
            os << " grant";
        if (ackRejectsBulk)
            os << " reject";
    }
    if (type == PacketType::coll) {
        os << " cseq=" << collSeq << " ckind=" << int(collKind)
           << " cop=" << int(collOp) << " rnd=" << collRound
           << " cval=" << collValue << " cnt=" << collCount;
        if (collDegraded)
            os << " degraded";
    }
    if (bulkRequest)
        os << " breq";
    if (bulkExit)
        os << " bexit";
    if (srcEpoch)
        os << " epoch=" << srcEpoch;
    if (type == PacketType::ack && ackEpoch)
        os << " ackEpoch=" << ackEpoch;
    if (corrupted)
        os << " corrupt";
    if (cloneOf)
        os << " retx#" << attempt << " of pkt#" << cloneOf;
    return os.str();
}

Packet *
PacketPool::alloc()
{
    Packet *p;
    if (freelist_.empty()) {
        arena_.push_back(std::make_unique<Packet>());
        p = arena_.back().get();
    } else {
        p = freelist_.back();
        freelist_.pop_back();
        *p = Packet();
    }
    p->id = nextId_++;
    ++allocated_;
    audit::onAlloc(*p);
    return p;
}

void
PacketPool::release(Packet *pkt)
{
    panic_if(pkt == nullptr, "PacketPool::release(nullptr)");
    audit::onRelease(*pkt);
    ++released_;
    freelist_.push_back(pkt);
}

} // namespace nifdy
