/**
 * @file
 * Radix-k butterfly and multibutterfly (indirect networks).
 *
 * Dilation 1 gives the classic butterfly: a unique path per
 * source/destination pair (in-order delivery, no path diversity).
 * Dilation 2 with randomized inter-stage wiring gives the
 * multibutterfly: two candidate channels per routing direction,
 * chosen adaptively, so packets can pass around faults and hot
 * spots but may arrive out of order.
 */

#ifndef NIFDY_NET_BUTTERFLY_HH
#define NIFDY_NET_BUTTERFLY_HH

#include "net/topology.hh"

namespace nifdy
{

class ButterflyNetwork;

/** One butterfly stage router. */
class ButterflyRouter : public Router
{
  public:
    ButterflyRouter(int id, const RouterParams &rp,
                    const ButterflyNetwork &net, int stage);

  protected:
    bool route(int inPort, Packet &pkt,
               std::vector<int> &candidates) override;

  private:
    const ButterflyNetwork &net_;
    int stage_;
};

class ButterflyNetwork : public Network
{
  public:
    explicit ButterflyNetwork(const NetworkParams &params);

    std::string name() const override;
    int distance(NodeId a, NodeId b) const override;

    int stages() const { return stages_; }
    int radix() const { return params_.radix; }
    int dilation() const { return params_.dilation; }

    /** Destination digit consumed at @p stage (MSB first). */
    int routeDigit(NodeId dst, int stage) const;

  private:
    void build();

    int stages_ = 0;
    int routersPerStage_ = 0;
};

} // namespace nifdy

#endif // NIFDY_NET_BUTTERFLY_HH
