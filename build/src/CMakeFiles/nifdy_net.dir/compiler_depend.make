# Empty compiler generated dependencies file for nifdy_net.
# This may be replaced when dependencies are built.
