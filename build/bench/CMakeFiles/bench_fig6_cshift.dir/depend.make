# Empty dependencies file for bench_fig6_cshift.
# This may be replaced when dependencies are built.
