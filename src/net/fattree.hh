/**
 * @file
 * Generalized k-ary n-tree fat tree.
 *
 * The full 4-ary fat tree has four parents per router at every
 * level; the CM-5 variant has two parents at the first two levels
 * (halving bisection bandwidth) and strictly time-multiplexed
 * request/reply networks on 8-bit physical links (so each logical
 * network gets eight bits every two cycles, as in the paper).
 * Upward routing is adaptive (most-credits, random tie-break);
 * downward routing is deterministic by destination digits.
 */

#ifndef NIFDY_NET_FATTREE_HH
#define NIFDY_NET_FATTREE_HH

#include "net/topology.hh"

namespace nifdy
{

class FatTreeNetwork;

/** One fat-tree router at a given level. */
class FatTreeRouter : public Router
{
  public:
    FatTreeRouter(int id, const RouterParams &rp,
                  const FatTreeNetwork &net, int level, long subtree,
                  int upPorts);

    int level() const { return level_; }

  protected:
    bool route(int inPort, Packet &pkt,
               std::vector<int> &candidates) override;

  private:
    const FatTreeNetwork &net_;
    int level_;     //!< 0 = leaf level
    long subtree_;  //!< index of this router's level subtree
    int upPorts_;   //!< number of parents (0 at the top level)
};

class FatTreeNetwork : public Network
{
  public:
    explicit FatTreeNetwork(const NetworkParams &params);

    std::string name() const override;
    int distance(NodeId a, NodeId b) const override;

    int arity() const { return k_; }
    int levels() const { return levels_; }
    /** Routers at level l. */
    int routersAtLevel(int l) const { return routersPerLevel_[l]; }

    /** Nodes covered by one level-l subtree. */
    long subtreeSpan(int l) const;

  private:
    void build();

    int k_ = 4;
    int levels_ = 0;
    std::vector<int> routersPerLevel_;  //!< R_l
    std::vector<int> routersPerSubtree_; //!< S_l
};

} // namespace nifdy

#endif // NIFDY_NET_FATTREE_HH
