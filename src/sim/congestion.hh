/**
 * @file
 * Congestion observatory: per-link stall maps, per-flow progress
 * tracking, and victim/aggressor attribution.
 *
 * The CongestionObserver is a passive Steppable registered after
 * every traffic-moving component, so it sees each cycle's final link
 * state. Per link it tiles every observed cycle into exactly one of
 * three states -- busy (the serializer is occupied at this cycle),
 * stalled (idle, but some upstream component wanted to push and was
 * refused: no credits, serializer contention earlier in the cycle,
 * or a store-and-forward tail wait), or idle (no demand) -- giving
 * the per-window conservation invariant
 *
 *     busy + idle + stalled == window length
 *
 * checked exactly at every window close (panic on violation) and, in
 * cumulative form (busy + idle + stalled == cyclesObserved, per
 * link), by the audit layer's congestion-conservation checker every
 * cycle.
 *
 * On top of the window accounting sits an online hysteresis detector:
 * a link opens a named congestion *episode* when its window stall
 * fraction reaches congestion.onFrac and closes it when the fraction
 * falls below congestion.offFrac. While an episode is open, each
 * flow's flit contribution across the link is accumulated; at close
 * the flows are classified -- *aggressors* hold at least
 * congestion.aggressorShare of the episode's flits, *victims* are
 * minor contributors whose end-to-end slowdown (mean delivered
 * latency over the flow's own minimum-latency isolation baseline)
 * is at least congestion.victimSlowdown.
 *
 * Cost model mirrors anatomy.hh: the congestion::on* shims below
 * cost one pointer test while no observer is active
 * (congestion.enabled defaults to off), so congestion-off runs
 * produce byte-identical reports. When active, the hooks are
 * NIFDY_HOT and allocation-free after warmup: the per-(link,flow)
 * window accumulators are zeroed rather than cleared so their keys
 * persist, and episode flow lists are only materialized at the
 * (rare) episode-close event.
 */

#ifndef NIFDY_SIM_CONGESTION_HH
#define NIFDY_SIM_CONGESTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernel.hh"
#include "sim/table.hh"
#include "sim/types.hh"

namespace nifdy
{

struct Packet;
struct Flit;
class Channel;
class Network;
class InvariantChecker;

/** Runtime knobs (CLI: congestion.enabled / congestion.window / ...). */
struct CongestionConfig
{
    /** Master switch; off = no sink, hooks cost one pointer test. */
    bool enabled = false;
    /** Accounting window length in cycles. */
    Cycle window = 1024;
    /** Episode opens when a window's stall fraction >= onFrac. */
    double onFrac = 0.5;
    /** Episode closes when a window's stall fraction < offFrac. */
    double offFrac = 0.25;
    /** Aggressor threshold: share of an episode's flits. */
    double aggressorShare = 0.25;
    /** Victim threshold: mean latency over isolation baseline. */
    double victimSlowdown = 2.0;

    /** Panic on out-of-range values. */
    void validate() const;
};

/** Async-id space for congestion episode slices (bit 60 | link),
 * disjoint from packet ids, node chains (bit 62) and collective
 * chains (bit 61). */
inline std::uint64_t
congestionChainId(int link)
{
    return (std::uint64_t(1) << 60) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(link));
}

/**
 * One closed (or still-open) congestion episode on a link. Flow
 * shares are materialized and classified at close, sorted by flit
 * contribution descending (ties by (src,dst) ascending) so output is
 * deterministic despite unordered accumulation.
 */
struct CongestionEpisode
{
    int link = -1;           //!< index into the observer's link table
    Cycle open = 0;          //!< first cycle of the opening window
    Cycle close = 0;         //!< one past the last congested cycle
    int windows = 0;         //!< accounting windows spanned
    double peakStallFrac = 0;
    std::uint64_t totalFlits = 0; //!< data flits crossing while open

    struct Share
    {
        NodeId src = invalidNode;
        NodeId dst = invalidNode;
        std::uint64_t flits = 0;
        double share = 0;     //!< flits / totalFlits
        double slowdown = 0;  //!< flow slowdown at close time
        bool aggressor = false;
        bool victim = false;
    };
    std::vector<Share> shares;

    bool closed() const { return close != 0; }
};

/**
 * The observatory sink. Constructing one makes it the current sink
 * (a stack is kept so nested scopes in tests behave); destroying it
 * pops it. finish() closes still-open episodes and stops recording.
 */
class CongestionObserver : public Steppable
{
  public:
    /** Cumulative and current-window accounting for one link. */
    struct LinkStats
    {
        std::uint64_t busy = 0;    //!< serializer occupied
        std::uint64_t idle = 0;    //!< no demand
        std::uint64_t stalled = 0; //!< demand refused (credit/arb/tail)
        std::uint64_t winBusy = 0;
        std::uint64_t winIdle = 0;
        std::uint64_t winStalled = 0;
        std::uint64_t reqFlits = 0;   //!< request-class flits pushed
        std::uint64_t replyFlits = 0; //!< reply-class flits pushed
        std::uint64_t winReqFlits = 0;
        std::uint64_t winReplyFlits = 0;
        int highWater = 0;  //!< occupancy high-water (flits in flight)
        int episodes = 0;   //!< episodes opened on this link
        int openEpisode = -1; //!< index into episodes(), -1 = calm
    };

    /** Progress accounting for one (src,dst) flow (data packets
     * only; acks and control-only packets are never tracked). */
    struct FlowStats
    {
        NodeId src = invalidNode;
        NodeId dst = invalidNode;
        std::uint64_t injected = 0;  //!< injections incl. retx clones
        std::uint64_t delivered = 0; //!< packets into the arrival FIFO
        std::uint64_t deliveredFlits = 0;
        /** injected - delivered: in the fabric, or lost for good on
         * a NIC without retransmission. */
        std::int64_t inflight = 0;
        std::uint64_t latSum = 0;     //!< sum of delivery latencies
        Cycle latMin = neverCycle;    //!< isolation baseline estimate
        Cycle firstInject = neverCycle;
        Cycle lastDeliver = 0;
        int aggressorEpisodes = 0;
        int victimEpisodes = 0;

        double meanLatency() const
        {
            return delivered ? double(latSum) / double(delivered) : 0;
        }
        /** Mean latency over the flow's own best-case (minimum)
         * delivery latency: a deterministic, self-calibrating
         * isolation-baseline estimate. */
        double slowdown() const
        {
            return (delivered && latMin > 0)
                       ? meanLatency() / double(latMin)
                       : 0;
        }
        /** Completion slope: delivered packets per kilocycle of the
         * flow's active span. */
        double slope() const
        {
            if (!delivered || firstInject == neverCycle ||
                lastDeliver <= firstInject)
                return 0;
            return 1000.0 * double(delivered) /
                   double(lastDeliver - firstInject);
        }
    };

    CongestionObserver(const CongestionConfig &cfg, int numNodes);
    ~CongestionObserver() override;
    CongestionObserver(const CongestionObserver &) = delete;
    CongestionObserver &operator=(const CongestionObserver &) = delete;

    /** The active sink, or nullptr when observation is off. */
    static CongestionObserver *current();

    /** Enumerate @p net's channels: inject/eject ports get
     * "inject<n>"/"eject<n>" labels, fabric links "internal<i>". */
    void attach(Network &net);
    /** Test seam: observe an explicit channel list. */
    void attachChannels(const std::vector<Channel *> &channels,
                        const std::vector<std::string> &labels,
                        int flitBytes);

    /** Per-cycle link-state tiling; runs after every component. */
    void step(Cycle now) override;

    //! @name Recording (called through the congestion::on* shims)
    //! @{
    /** A component wanted to push on @p ch this cycle and could not
     * (no credits, serializer busy, or a SAF tail wait). */
    void onLinkStall(const Channel *ch, Cycle now);
    /** A flit started serializing on @p ch. */
    void onLinkFlit(const Channel *ch, const Flit &flit, Cycle now);
    /** Head flit of a data packet entered the network. */
    void onInject(const Packet &pkt, Cycle now);
    /** Data packet entered the destination's arrival FIFO. */
    void onDeliver(const Packet &pkt, Cycle now);
    //! @}

    /** Close still-open episodes at @p now and stop recording.
     * Idempotent. */
    void finish(Cycle now);

    //! @name Aggregates
    //! @{
    int numLinks() const { return static_cast<int>(links_.size()); }
    const LinkStats &link(int i) const
    {
        return links_[static_cast<std::size_t>(i)];
    }
    const std::string &linkLabel(int i) const
    {
        return labels_[static_cast<std::size_t>(i)];
    }
    Cycle cyclesObserved() const { return cyclesObserved_; }
    std::uint64_t windowsClosed() const { return windowsClosed_; }
    const std::vector<CongestionEpisode> &episodes() const
    {
        return episodes_;
    }
    std::uint64_t episodesOpened() const { return episodesOpened_; }
    std::uint64_t episodesClosed() const { return episodesClosed_; }
    int openEpisodes() const { return openEpisodes_; }
    /** Flow table lookup; nullptr when the flow was never seen. */
    const FlowStats *flow(NodeId src, NodeId dst) const;
    std::size_t numFlows() const { return flows_.size(); }
    /** Distinct flows classified as aggressor/victim in >= 1
     * episode. */
    int aggressorFlows() const;
    int victimFlows() const;
    double maxSlowdown() const;
    std::uint64_t totalBusy() const;
    std::uint64_t totalIdle() const;
    std::uint64_t totalStalled() const;
    /** Link with the most stalled cycles (-1 when no links). */
    int hottestLink() const;
    //! @}

    //! @name Rendering
    //! @{
    /** Per-link stall map (links that saw traffic or stalls). */
    Table linkTable(const std::string &title) const;
    /** Ranked flow progress/slowdown table (worst @p maxRows). */
    Table flowTable(const std::string &title,
                    std::size_t maxRows = 32) const;
    /** Episode log with aggressor/victim lists. */
    Table episodeTable(const std::string &title) const;
    //! @}

  private:
    static std::uint64_t flowKey(NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst);
    }
    static std::uint64_t linkFlowKey(int link, NodeId src, NodeId dst)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(link))
                << 32) |
               (static_cast<std::uint64_t>(
                    static_cast<std::uint16_t>(src))
                << 16) |
               static_cast<std::uint16_t>(dst);
    }

    FlowStats &flowFor(const Packet &pkt);
    void closeWindow(Cycle now);
    void openEpisode(int link, Cycle winStart);
    void closeEpisode(int link, Cycle end);
    void emitCongestedCounter(Cycle now);

    CongestionConfig cfg_;
    bool finished_ = false;
    int flitBytes_ = bytesPerWord;

    std::vector<Channel *> channels_;
    std::vector<std::string> labels_;
    std::vector<LinkStats> links_;
    /** Set by onLinkStall, consumed and cleared by step(). */
    std::vector<std::uint8_t> stallFlag_;
    std::unordered_map<const Channel *, int> linkIndex_; // nifdy:pointer-ok(keyed lookup only, never iterated; order never observed)

    std::unordered_map<std::uint64_t, FlowStats> flows_;

    /** Per-(link,flow) flit accumulators. Values are zeroed at
     * window close / episode close; keys persist so the steady state
     * never allocates. */
    struct LinkFlowAcc
    {
        std::uint64_t winFlits = 0; //!< current window
        std::uint64_t epFlits = 0;  //!< open episode on this link
    };
    std::unordered_map<std::uint64_t, LinkFlowAcc> linkFlows_;

    std::vector<CongestionEpisode> episodes_;
    Cycle cyclesObserved_ = 0;
    std::uint64_t windowsClosed_ = 0;
    std::uint64_t episodesOpened_ = 0;
    std::uint64_t episodesClosed_ = 0;
    int openEpisodes_ = 0;
};

/**
 * Cumulative conservation checker for the audit layer: per link, the
 * busy/idle/stalled tiling must sum to the cycles observed at every
 * cycle boundary and at finish.
 */
std::unique_ptr<InvariantChecker>
makeCongestionConservationChecker(const CongestionObserver *obs);

/**
 * Observer hook shims, mirroring anatomy::on*: one pointer test
 * while no CongestionObserver is active. Field inspection (ack/ctrl
 * filtering, link lookup) happens inside the observer, keeping this
 * header free of packet.hh/channel.hh dependencies.
 */
namespace congestion
{

inline CongestionObserver *
sink()
{
    return CongestionObserver::current();
}

/** True when a sink is attached. */
inline bool
active()
{
    return sink() != nullptr;
}

inline void
onLinkStall(const Channel *ch, Cycle now)
{
    if (CongestionObserver *c = sink())
        c->onLinkStall(ch, now);
}

inline void
onLinkFlit(const Channel *ch, const Flit &flit, Cycle now)
{
    if (CongestionObserver *c = sink())
        c->onLinkFlit(ch, flit, now);
}

inline void
onInject(const Packet &pkt, Cycle now)
{
    if (CongestionObserver *c = sink())
        c->onInject(pkt, now);
}

inline void
onDeliver(const Packet &pkt, Cycle now)
{
    if (CongestionObserver *c = sink())
        c->onDeliver(pkt, now);
}

} // namespace congestion

} // namespace nifdy

#endif // NIFDY_SIM_CONGESTION_HH
