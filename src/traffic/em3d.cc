#include "traffic/em3d.hh"

#include <map>

#include "sim/log.hh"

namespace nifdy
{

Em3dParams
Em3dParams::light()
{
    Em3dParams p;
    p.nNodes = 200;
    p.degree = 10;
    p.localPercent = 80;
    p.distSpan = 5;
    return p;
}

Em3dParams
Em3dParams::heavy()
{
    Em3dParams p;
    p.nNodes = 100;
    p.degree = 20;
    p.localPercent = 3;
    p.distSpan = 20;
    return p;
}

Em3dGraph::Em3dGraph(int numNodes, const Em3dParams &params,
                     std::uint64_t seed)
{
    panic_if(numNodes < 2, "EM3D needs >= 2 processors");
    Rng rng(seed, 0xe3d);
    int span = std::min(params.distSpan, numNodes - 1);
    for (int half = 0; half < 2; ++half)
        plans_[half].resize(numNodes);

    // For each half-step, generate the remote arcs of every
    // processor's graph nodes and batch them by remote owner. The
    // owner of a consumed value sends it, so processor p's arc to a
    // remote owner q means q sends one word to p.
    for (int half = 0; half < 2; ++half) {
        // in[p][q]: words processor p consumes from owner q.
        std::vector<std::map<NodeId, int>> in(numNodes);
        for (NodeId p = 0; p < numNodes; ++p) {
            long arcs = static_cast<long>(params.nNodes) * params.degree;
            long localArcs = 0;
            for (long a = 0; a < arcs; ++a) {
                if (rng.nextBounded(100) <
                    static_cast<std::uint64_t>(params.localPercent)) {
                    ++localArcs;
                    continue;
                }
                long delta = rng.range(1, span);
                if (rng.chance(0.5))
                    delta = numNodes - delta;
                NodeId owner = static_cast<NodeId>((p + delta) %
                                                   numNodes);
                ++in[p][owner];
            }
            plans_[half][p].compute =
                static_cast<Cycle>(arcs * params.computePerArc);
            (void)localArcs;
        }
        for (NodeId p = 0; p < numNodes; ++p) {
            for (const auto &kv : in[p]) {
                NodeId owner = kv.first;
                int words = kv.second;
                plans_[half][owner].sends.emplace_back(p, words);
                plans_[half][p].expectedWords += words;
                totalRemoteWords_ += words;
            }
        }
    }
}

Em3dWorkload::Em3dWorkload(Processor &proc, MessageLayer &msg,
                           Barrier &barrier, const Em3dGraph &graph,
                           std::uint64_t seed)
    : Workload(proc, msg, &barrier, seed), graph_(graph)
{
    startHalf(0);
}

void
Em3dWorkload::startHalf(Cycle now)
{
    (void)now;
    computed_ = false;
    waitingBarrier_ = false;
    wordsAtHalfStart_ = wordsAccepted_;
    const Em3dGraph::HalfPlan &plan = graph_.plan(me(), half_);
    for (const auto &dw : plan.sends)
        msg_.enqueueMessage(dw.first, dw.second,
                            NetClass::request);
}

void
Em3dWorkload::tick(Cycle now)
{
    if (receiveOne(now))
        return;

    const Em3dGraph::HalfPlan &plan = graph_.plan(me(), half_);

    if (waitingBarrier_) {
        if (barrier_->released(me(), now)) {
            half_ ^= 1;
            if (half_ == 0)
                ++iterations_;
            startHalf(now);
        } else {
            pollNetwork(now);
        }
        return;
    }

    if (!computed_) {
        // Local update work for this half-step.
        computed_ = true;
        proc_.compute(plan.compute, now);
        return;
    }

    if (!msg_.allSent()) {
        if (msg_.pump(now))
            return;
        pollNetwork(now);
        return;
    }

    // Sent everything: wait for all ghost values of this half.
    if (wordsAccepted_ - wordsAtHalfStart_ <
        static_cast<std::uint64_t>(plan.expectedWords)) {
        pollNetwork(now);
        return;
    }

    barrier_->arrive(me(), now);
    waitingBarrier_ = true;
}

} // namespace nifdy
