/**
 * @file
 * Figure 3: packets delivered in a fixed window under the "light"
 * synthetic traffic pattern (1/3 senders per phase, long-tailed
 * message lengths, pseudo-random non-responsive receivers).
 *
 * Paper shape: smaller spreads than Figure 2 (less contention), but
 * NIFDY still matches or beats the alternatives; bulk dialogs keep
 * pairwise bandwidth up for the 10- and 20-packet messages.
 *
 * Args: cycles=150000 nodes=64 seed=1 csv=false
 */

#include "benchutil.hh"

using namespace nifdy;

int
main(int argc, char **argv)
{
    setQuiet(true);
    BenchArgs args(argc, argv, 150000);

    Table t("Figure 3: light synthetic traffic, packets delivered in " +
            std::to_string(args.cycles) + " cycles");
    t.header({"network", "none", "buffers", "nifdy", "nifdy/none",
              "nifdy/buffers"});

    SyntheticParams sp = SyntheticParams::light();
    for (const std::string &topo : paperTopologies()) {
        std::uint64_t none = syntheticThroughput(
            topo, NicKind::none, sp, args.cycles, args.nodes,
            args.seed, &args.conf);
        std::uint64_t buffers = syntheticThroughput(
            topo, NicKind::buffers, sp, args.cycles, args.nodes,
            args.seed, &args.conf);
        std::uint64_t nifdy = syntheticThroughput(
            topo, NicKind::nifdy, sp, args.cycles, args.nodes,
            args.seed, &args.conf);
        t.row({topo, Table::num(static_cast<long>(none)),
               Table::num(static_cast<long>(buffers)),
               Table::num(static_cast<long>(nifdy)),
               Table::num(double(nifdy) / double(none), 2),
               Table::num(double(nifdy) / double(buffers), 2)});
    }
    args.emit(t);
    return args.finish();
}
