# Empty compiler generated dependencies file for nifdy_proc.
# This may be replaced when dependencies are built.
