/**
 * @file
 * Processor model: charges the measured CM-5 software overheads for
 * sending, receiving, and polling (paper Table 2 / Section 2.4.3)
 * and drives a Workload whenever it is not busy. Message reception
 * is by polling only, as in the paper's simulator.
 */

#ifndef NIFDY_PROC_PROCESSOR_HH
#define NIFDY_PROC_PROCESSOR_HH

#include "nic/nic.hh"
#include "sim/kernel.hh"

namespace nifdy
{

class Workload;

/** Software overhead constants, in cycles. */
struct ProcParams
{
    int tSend = 40;    //!< per-packet send overhead
    int tReceive = 60; //!< dispatch + handle + return
    int tPoll = 22;    //!< unsuccessful poll
};

class Processor : public Steppable
{
  public:
    Processor(NodeId id, Nic &nic, const ProcParams &params);

    void step(Cycle now) override;

    const char *profileClass() const override { return "proc"; }

    /** Attach the workload driving this processor (non-owning). */
    void setWorkload(Workload *w) { workload_ = w; }

    /**
     * Take the processor offline (its node crashed) or bring it
     * back. Offline processors tick nothing and charge nothing; any
     * in-progress busy time is forfeit.
     */
    void setOffline(bool offline, Cycle now);

    /** Is the processor offline (node down)? */
    bool offline() const { return offline_; }

    NodeId id() const { return id_; }
    Nic &nic() { return nic_; }
    const ProcParams &params() const { return params_; }
    void setKernel(Kernel *k) { kernel_ = k; }

    //! @name Actions available to the workload (one per tick)
    //! @{
    /** Spend @p cycles of computation. */
    void compute(Cycle cycles, Cycle now);

    /**
     * Try to hand @p pkt to the NIC, charging tSend on success.
     * On failure (NIC full) nothing is charged and the caller keeps
     * the packet.
     */
    bool sendPacket(Packet *pkt, Cycle now);

    /**
     * Poll the network: returns a packet (charging tReceive) or
     * nullptr (charging tPoll).
     */
    Packet *poll(Cycle now);

    /**
     * Free peek at the arrivals FIFO (a status-register read); use
     * poll() to actually take the packet and pay for it.
     */
    Packet *peek() { return nic_.peekReceive(); }
    //! @}

    bool busy(Cycle now) const { return now < busyUntil_; }
    Cycle busyUntil() const { return busyUntil_; }

    //! @name Accounting
    //! @{
    std::uint64_t cyclesBusy() const { return cyclesBusy_; }
    std::uint64_t sends() const { return sends_; }
    std::uint64_t receives() const { return receives_; }
    std::uint64_t emptyPolls() const { return emptyPolls_; }
    //! @}

  private:
    NodeId id_;
    Nic &nic_;
    ProcParams params_;
    Workload *workload_ = nullptr;
    Kernel *kernel_ = nullptr;
    bool offline_ = false;
    Cycle busyUntil_ = 0;
    std::uint64_t cyclesBusy_ = 0;
    std::uint64_t sends_ = 0;
    std::uint64_t receives_ = 0;
    std::uint64_t emptyPolls_ = 0;
};

} // namespace nifdy

#endif // NIFDY_PROC_PROCESSOR_HH
