file(REMOVE_RECURSE
  "libnifdy_sim.a"
)
