#include "proc/processor.hh"

#include "proc/workload.hh"
#include "sim/log.hh"

namespace nifdy
{

Processor::Processor(NodeId id, Nic &nic, const ProcParams &params)
    : id_(id), nic_(nic), params_(params)
{
}

void
Processor::setOffline(bool offline, Cycle now)
{
    offline_ = offline;
    if (offline)
        busyUntil_ = now; // whatever it was computing dies with it
}

NIFDY_HOT void
Processor::step(Cycle now)
{
    if (offline_)
        return;
    if (busy(now)) {
        if (kernel_)
            kernel_->noteActivity();
        return;
    }
    if (workload_)
        workload_->tick(now);
}

void
Processor::compute(Cycle cycles, Cycle now)
{
    if (cycles == 0)
        return;
    // Additive: charging twice in one tick stacks the costs.
    busyUntil_ = std::max(busyUntil_, now) + cycles;
    cyclesBusy_ += cycles;
    if (kernel_)
        kernel_->noteActivity();
}

bool
Processor::sendPacket(Packet *pkt, Cycle now)
{
    panic_if(pkt == nullptr, "sendPacket(nullptr)");
    if (!nic_.canSend(*pkt))
        return false;
    nic_.send(pkt, now);
    compute(params_.tSend, now);
    ++sends_;
    return true;
}

Packet *
Processor::poll(Cycle now)
{
    Packet *pkt = nic_.pollReceive(now);
    if (pkt) {
        compute(params_.tReceive, now);
        ++receives_;
    } else {
        compute(params_.tPoll, now);
        ++emptyPolls_;
    }
    return pkt;
}

} // namespace nifdy
