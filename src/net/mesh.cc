#include "net/mesh.hh"

#include "sim/log.hh"

namespace nifdy
{

MeshRouter::MeshRouter(int id, const RouterParams &rp,
                       const MeshNetwork &net)
    : Router(id, rp), net_(net), coord_(net.coordOf(id))
{
}

namespace
{
/** routeScratch bit marking "took the escape VC; stay in order". */
constexpr std::uint32_t escapedBit = 1u << 16;
} // namespace

int
MeshRouter::dorPort(const Packet &pkt) const
{
    const std::vector<int> dst = net_.coordOf(pkt.dst);
    for (int d = 0; d < net_.numDims(); ++d) {
        if (coord_[d] == dst[d])
            continue;
        return dst[d] > coord_[d] ? net_.portPlus(d)
                                  : net_.portMinus(d);
    }
    return net_.ejectPort();
}

bool
MeshRouter::route(int inPort, Packet &pkt, std::vector<int> &candidates)
{
    (void)inPort;
    if (net_.adaptive() && !(pkt.routeScratch & escapedBit)) {
        // Duato-style minimal adaptive routing: any productive
        // direction; the switch picks by downstream credit.
        const std::vector<int> dst = net_.coordOf(pkt.dst);
        for (int d = 0; d < net_.numDims(); ++d) {
            if (coord_[d] == dst[d])
                continue;
            candidates.push_back(dst[d] > coord_[d]
                                     ? net_.portPlus(d)
                                     : net_.portMinus(d));
        }
        if (candidates.empty())
            candidates.push_back(net_.ejectPort());
        return candidates.size() > 1;
    }

    const std::vector<int> dst = net_.coordOf(pkt.dst);
    for (int d = 0; d < net_.numDims(); ++d) {
        int cur = coord_[d];
        int want = dst[d];
        if (cur == want)
            continue;
        int k = net_.dimSize(d);
        bool plus;
        if (!net_.wrap()) {
            plus = want > cur;
        } else {
            int distPlus = (want - cur + k) % k;
            plus = distPlus <= k - distPlus;
        }
        if (net_.wrap()) {
            bool crossing =
                (plus && cur == k - 1) || (!plus && cur == 0);
            if (crossing)
                pkt.routeScratch |= (1u << d);
        }
        candidates.push_back(plus ? net_.portPlus(d)
                                  : net_.portMinus(d));
        return false;
    }
    candidates.push_back(net_.ejectPort());
    return false;
}

unsigned
MeshRouter::vcMaskForHop(int outPort, Packet &pkt)
{
    if (outPort == net_.ejectPort())
        return ~0u;
    if (net_.wrap()) {
        int d = outPort / 2;
        // Dateline scheme: once a packet crosses (or is crossing)
        // the wraparound link of dimension d, it moves to the
        // second VC.
        return (pkt.routeScratch >> d) & 1 ? 0b10u : 0b01u;
    }
    if (net_.adaptive()) {
        // VC 0 is the dimension-order escape channel; VC 1 (and
        // above) are fully adaptive. The escape channel may only be
        // taken along the dimension-order port, and a packet that
        // took it once stays in order for the rest of its path.
        if (pkt.routeScratch & escapedBit)
            return 0b01u;
        unsigned adaptiveMask = ~1u;
        return outPort == dorPort(pkt) ? ~0u : adaptiveMask;
    }
    return ~0u;
}

void
MeshRouter::onAllocate(Packet &pkt, int outPort, int subVc)
{
    if (net_.adaptive() && subVc == 0 && outPort != net_.ejectPort())
        pkt.routeScratch |= escapedBit;
}

MeshNetwork::MeshNetwork(const NetworkParams &params) : Network(params)
{
    fatal_if(params_.dims.empty(), "mesh needs dimension sizes");
    long prod = 1;
    for (int s : params_.dims) {
        fatal_if(s < 2, "mesh dimension size must be >= 2");
        prod *= s;
    }
    fatal_if(prod != params_.numNodes,
             "mesh dims do not multiply to numNodes");
    fatal_if(params_.wrap && params_.vcsPerClass < 2,
             "torus requires >= 2 VCs per class (dateline)");
    build();
}

std::string
MeshNetwork::name() const
{
    std::string out = params_.wrap ? "torus" : "mesh";
    for (std::size_t i = 0; i < params_.dims.size(); ++i)
        out += (i ? "x" : "-") + std::to_string(params_.dims[i]);
    if (params_.adaptiveRouting)
        out += "-adaptive";
    return out;
}

std::vector<int>
MeshNetwork::coordOf(NodeId n) const
{
    std::vector<int> c(numDims());
    for (int d = 0; d < numDims(); ++d) {
        c[d] = n % params_.dims[d];
        n /= params_.dims[d];
    }
    return c;
}

NodeId
MeshNetwork::nodeOf(const std::vector<int> &coord) const
{
    NodeId n = 0;
    for (int d = numDims() - 1; d >= 0; --d)
        n = n * params_.dims[d] + coord[d];
    return n;
}

int
MeshNetwork::distance(NodeId a, NodeId b) const
{
    auto ca = coordOf(a);
    auto cb = coordOf(b);
    int total = 0;
    for (int d = 0; d < numDims(); ++d) {
        int diff = std::abs(ca[d] - cb[d]);
        if (params_.wrap)
            diff = std::min(diff, params_.dims[d] - diff);
        total += diff;
    }
    return total;
}

void
MeshNetwork::build()
{
    const int P = params_.numNodes;
    const int D = numDims();

    for (int n = 0; n < P; ++n)
        routers_.push_back(
            std::make_unique<MeshRouter>(n, routerParams(n), *this));

    ports_.resize(P);

    // Per node, per dimension: the outgoing plus/minus channels.
    std::vector<std::vector<Channel *>> outPlus(P), outMinus(P);

    // Pass A: create channels and output ports in canonical order.
    for (int n = 0; n < P; ++n) {
        Router &r = *routers_[n];
        outPlus[n].resize(D);
        outMinus[n].resize(D);
        for (int d = 0; d < D; ++d) {
            outPlus[n][d] = newChannel();
            outMinus[n][d] = newChannel();
            int pp = r.addOutPort(outPlus[n][d], params_.bufDepth);
            int pm = r.addOutPort(outMinus[n][d], params_.bufDepth);
            panic_if(pp != portPlus(d) || pm != portMinus(d),
                     "mesh port numbering broke");
        }
        Channel *eject = newNicChannel();
        int pe = r.addOutPort(eject, params_.ejectDepth);
        panic_if(pe != ejectPort(), "mesh eject port numbering broke");
        ports_[n].eject = eject;
    }

    // Pass B: wire inputs. Input 2d comes from the plus neighbour,
    // input 2d+1 from the minus neighbour, then the injection port.
    auto neighbor = [&](int n, int d, int dir) -> int {
        auto c = coordOf(n);
        int k = params_.dims[d];
        int nc = c[d] + dir;
        if (params_.wrap) {
            nc = (nc + k) % k;
        } else if (nc < 0 || nc >= k) {
            return -1;
        }
        c[d] = nc;
        return nodeOf(c);
    };

    for (int n = 0; n < P; ++n) {
        Router &r = *routers_[n];
        for (int d = 0; d < D; ++d) {
            int np = neighbor(n, d, +1);
            int nm = neighbor(n, d, -1);
            // The plus neighbour reaches us through its minus-out
            // channel; a boundary gets a dummy (never-pushed) feed.
            Channel *fromPlus = np >= 0 ? outMinus[np][d] : newChannel();
            Channel *fromMinus = nm >= 0 ? outPlus[nm][d] : newChannel();
            r.addInPort(fromPlus);
            r.addInPort(fromMinus);
        }
        Channel *inject = newNicChannel();
        int pi = r.addInPort(inject);
        panic_if(pi != injectPort(), "mesh inject port numbering broke");
        ports_[n].inject = inject;
        ports_[n].injectDepth = params_.bufDepth;
    }
}

} // namespace nifdy
