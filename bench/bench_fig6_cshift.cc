/**
 * @file
 * Figure 6: throughput of the cyclic-shift all-to-all pattern on
 * the CM-5-style network, comparing the plain interface with and
 * without Strata-style inter-phase barriers, the buffers-only
 * control, NIFDY's flow control alone (NIFDY-), and NIFDY with the
 * in-order payload benefit exploited (NIFDY).
 *
 * Paper shape: NIFDY's congestion control alone beats optimized
 * barriers; exploiting in-order delivery adds more on top.
 *
 * Args: nodes=64 words=120 seed=1 csv=false
 * (paper uses a 32-node CM-5; see the note in bench_fig5.)
 */

#include "benchutil.hh"
#include "traffic/cshift.hh"

using namespace nifdy;

namespace
{

struct Result
{
    Cycle completion = 0;
    std::uint64_t packets = 0;
    std::uint64_t words = 0;
    bool done = false;
};

Result
runShift(NicKind kind, bool barriers, bool exploitInOrder, int nodes,
         int words, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.topology = "cm5";
    cfg.numNodes = nodes;
    cfg.nicKind = kind;
    cfg.seed = seed;
    cfg.exploitInOrder = exploitInOrder;
    cfg.msg.packetWords = 6;
    Experiment exp(cfg);
    CShiftParams cp;
    cp.wordsPerPair = words;
    cp.barriers = barriers;
    CShiftBoard board(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        exp.nic(n).setInjectBoard(&board.injected);
        exp.setWorkload(n, std::make_unique<CShiftWorkload>(
                               exp.proc(n), exp.msg(n), exp.barrier(),
                               nodes, cp, board, seed));
    }
    Result r;
    exp.runUntilDone(40000000);
    r.done = exp.allDone();
    r.completion = exp.kernel().now();
    r.packets = exp.packetsDelivered();
    r.words = exp.wordsDelivered();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    BenchArgs args(argc, argv, 0);
    int words = static_cast<int>(args.conf.getInt("words", 120));

    struct Row
    {
        const char *name;
        NicKind kind;
        bool barriers;
        bool inOrder;
    };
    const Row rows[] = {
        {"none", NicKind::none, false, true},
        {"none + barriers", NicKind::none, true, true},
        {"buffers only", NicKind::buffers, false, true},
        {"nifdy- (flow control only)", NicKind::nifdy, false, false},
        {"nifdy (exploits in-order)", NicKind::nifdy, false, true},
    };

    Table t("Figure 6: C-shift on the CM-5-style network, " +
            std::to_string(args.nodes) + " nodes, " +
            std::to_string(words) + " payload words per pair");
    t.header({"configuration", "cycles", "payload words/kcycle",
              "packets"});
    double base = 0;
    for (const Row &r : rows) {
        Result res = runShift(r.kind, r.barriers, r.inOrder,
                              args.nodes, words, args.seed);
        if (!res.done) {
            t.row({r.name, "did not finish", "-", "-"});
            continue;
        }
        double wpk = res.words * 1000.0 / res.completion;
        if (base == 0)
            base = wpk;
        t.row({r.name, Table::num(static_cast<long>(res.completion)),
               Table::num(wpk, 1) + " (" + Table::num(wpk / base, 2) +
                   "x)",
               Table::num(static_cast<long>(res.packets))});
    }
    args.emit(t);
    return args.finish();
}
