/**
 * @file
 * Minimal recursive-descent JSON reader for the campaign engine.
 *
 * The simulator only ever *writes* JSON (src/sim/json.hh); the
 * campaign layer also has to *read* it: campaign specs, journal
 * records, and the nifdy-report-1 documents workers hand back. The
 * reader is strict -- trailing garbage, truncated documents and
 * malformed escapes are parse errors, never silently accepted --
 * because the supervisor uses "does it parse" as the integrity check
 * for worker reports (a killed worker must not leave a file that
 * parses as a complete report; see DESIGN.md section 11).
 *
 * Numbers keep their raw source token so a value can be re-rendered
 * byte-identically into the aggregate (no double round-trip), and
 * object members preserve source order for the same reason.
 */

#ifndef NIFDY_CAMPAIGN_JSONIN_HH
#define NIFDY_CAMPAIGN_JSONIN_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nifdy
{

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    /** Raw source token for Kind::Number (verbatim re-render). */
    std::string number;
    /** Decoded text for Kind::String. */
    std::string text;
    std::vector<JsonValue> items;
    /** Members in source order (worker reports emit sorted keys). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup (nullptr when absent or not an object). */
    const JsonValue *find(std::string_view key) const;

    /** The member as a string; @p fallback when absent. Numbers and
     * bools render to their source token ("3", "true"). */
    std::string getString(std::string_view key,
                          const std::string &fallback = "") const;

    double asDouble() const;
    long asInt() const;

    /** Re-render this value as JSON (numbers verbatim, object
     * members in stored order). */
    std::string render() const;
};

/**
 * Parse @p text as exactly one JSON document. On failure the
 * returned value is Null and @p err (if non-null) describes the
 * problem and its byte offset; on success @p err is cleared.
 */
JsonValue parseJson(std::string_view text, std::string *err = nullptr);

/** parseJson() over a whole file; missing files are parse errors. */
JsonValue parseJsonFile(const std::string &path,
                        std::string *err = nullptr);

} // namespace nifdy

#endif // NIFDY_CAMPAIGN_JSONIN_HH
