/**
 * @file
 * Table 3: characteristics of the simulated 64-node networks and
 * the NIFDY parameters used for them. For each topology this bench
 * measures the unloaded one-way packet latency at several hop
 * counts, fits T_lat(d) = a*d + b, reports the network volume and
 * distances, evaluates the Section 2.4 analytic model (round trip,
 * suggested bulk window), and prints the best parameters the other
 * benches use.
 *
 * Args: nodes=64 seed=1 csv=false packet=32
 */

#include "benchutil.hh"
#include "nic/plainnic.hh"

using namespace nifdy;

namespace
{

/** Measure one unloaded delivery time at a given hop distance. */
Cycle
probeLatency(Network &net, std::vector<std::unique_ptr<BufferedNic>> &
                               nics,
             Kernel &kernel, PacketPool &pool, NodeId src, NodeId dst,
             int bytes)
{
    Packet *p = pool.alloc();
    p->src = src;
    p->dst = dst;
    p->sizeBytes = bytes;
    Cycle start = kernel.now();
    nics[src]->send(p, start);
    kernel.run(200000, [&] { return nics[dst]->arrivalsPending() > 0; });
    Cycle arrival = kernel.now();
    Packet *got = nics[dst]->pollReceive(arrival);
    pool.release(got);
    (void)net;
    return arrival - start;
}

struct Probe
{
    double latA = 0;
    double latB = 0;
    double maxLat = 0;
};

/** Fit T_lat(d) over a spread of destination distances. */
Probe
fitLatency(const std::string &topo, int nodes, int bytes,
           std::uint64_t seed)
{
    NetworkParams np;
    np.numNodes = nodes;
    np.seed = seed;
    auto net = makeNetwork(topo, np);
    Kernel kernel;
    net->addToKernel(kernel);
    PacketPool pool;
    std::vector<std::unique_ptr<BufferedNic>> nics;
    for (NodeId n = 0; n < nodes; ++n) {
        NicParams nicp;
        nicp.flitBytes = net->params().flitBytes;
        nicp.vcsPerClass = net->params().vcsPerClass;
        nicp.ejectDepth = net->params().ejectDepth;
        nicp.arrivalFifo = 4;
        nics.push_back(std::make_unique<BufferedNic>(
            n, net->nodePorts(n), nicp, pool, 4));
        nics.back()->setKernel(&kernel);
        kernel.add(nics.back().get());
    }
    // Sample pairs covering the distance range.
    std::vector<std::pair<int, Cycle>> samples;
    Probe out;
    for (NodeId dst = 1; dst < nodes; dst = dst * 2 + 1) {
        int d = net->distance(0, dst);
        Cycle lat = probeLatency(*net, nics, kernel, pool, 0, dst,
                                 bytes);
        samples.emplace_back(d, lat);
        out.maxLat = std::max(out.maxLat, double(lat));
    }
    // Least-squares fit.
    double n = samples.size(), sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (auto &[d, lat] : samples) {
        sx += d;
        sy += lat;
        sxx += double(d) * d;
        sxy += double(d) * lat;
    }
    double denom = n * sxx - sx * sx;
    out.latA = denom != 0 ? (n * sxy - sx * sy) / denom : 0;
    out.latB = (sy - out.latA * sx) / n;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    BenchArgs args(argc, argv, 0);
    int bytes = static_cast<int>(args.conf.getInt("packet", 32));

    Table t("Table 3: simulated " + std::to_string(args.nodes) +
            "-node networks, measured characteristics and NIFDY "
            "parameters");
    t.header({"network", "d_max", "d_avg", "T_lat(d) fit",
              "T_rt(d_max)", "vol (flits/node)", "W_analytic",
              "O", "B", "D", "W"});

    for (const std::string &topo : paperTopologies()) {
        NetworkParams np;
        np.numNodes = args.nodes;
        np.seed = args.seed;
        auto net = makeNetwork(topo, np);
        Probe p = fitLatency(topo, args.nodes, bytes, args.seed);

        NetModel m;
        m.latA = p.latA;
        m.latB = p.latB;
        int dmax = net->maxDistance();
        NifdyConfig best = bestNifdyParams(topo);
        t.row({topo, Table::num(static_cast<long>(dmax)),
               Table::num(net->averageDistance(), 1),
               Table::num(p.latA, 1) + "d+" + Table::num(p.latB, 1),
               Table::num(roundTrip(m, dmax), 0),
               Table::num(net->volumeFlitsPerNode(), 1),
               Table::num(static_cast<long>(
                   windowForCombinedAcks(m, dmax))),
               Table::num(static_cast<long>(best.opt)),
               Table::num(static_cast<long>(best.pool)),
               Table::num(static_cast<long>(best.dialogs)),
               Table::num(static_cast<long>(best.window))});
    }
    args.emit(t);
    args.note("T_lat fitted on an unloaded network (32-byte packets);"
              "\nW_analytic is Equation 3's window for full pairwise"
              " bandwidth at d_max;\nO/B/D/W are the tuned parameters"
              " used by the other benches.\nPaper constants: T_send=40"
              " T_receive=60 T_ackproc=4 (Table 2 / Section 2.4.3).");
    return args.finish();
}
