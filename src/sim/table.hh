/**
 * @file
 * Aligned text-table printer used by the bench harnesses to emit
 * paper-style result tables (and optional CSV).
 */

#ifndef NIFDY_SIM_TABLE_HH
#define NIFDY_SIM_TABLE_HH

#include <string>
#include <vector>

namespace nifdy
{

/** A simple column-aligned table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void header(std::vector<std::string> cols);
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);
    static std::string num(long v);
    static std::string num(unsigned long v);

    /** Render aligned text. */
    std::string str() const;
    /** Render comma-separated values (header + rows, no title). */
    std::string csv() const;
    /** Print str() to stdout. */
    void print() const;

    //! @name Structured access (run-report serialization)
    //! @{
    const std::string &title() const { return title_; }
    const std::vector<std::string> &headerRow() const
    {
        return header_;
    }
    const std::vector<std::vector<std::string>> &rowsData() const
    {
        return rows_;
    }
    //! @}

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nifdy

#endif // NIFDY_SIM_TABLE_HH
