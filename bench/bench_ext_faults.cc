/**
 * @file
 * Robustness extension evaluation: NIFDY with hardened
 * retransmission (exponential backoff, jitter, retry caps) over a
 * fabric that injects faults *inside* the network -- per-hop packet
 * drops and corruption -- rather than at the receiving NIC. Sweeps
 * the in-fabric fault rate and reports goodput degradation,
 * recovery traffic, and recovery latency; degradation should be
 * graceful and delivery stays exactly-once and in order (the test
 * suite asserts the latter).
 *
 * Args: cycles=120000 nodes=16 seed=1 topology=mesh2d corrupt=0
 *       timeout=1500 backoff=2.0 maxTimeout=12000 jitter=0.25
 *       retries=0 csv=false help=false
 *
 * `--anatomy` (or anatomy.enabled=true) attributes every sampled
 * packet's latency to stall causes per fault rate: the retx-backoff
 * and epoch-recovery shares grow with the drop probability while
 * conservation still holds exactly (audited; see
 * tools/analyze_latency.py --check-conservation).
 *
 * `--congestion` (or congestion.enabled=true) records the per-link
 * stall map and flow-progress attribution per fault rate under
 * "congestion.fault<N>.*"; its busy/idle/stalled tiling holds
 * exactly even while the fabric drops packets (see
 * tools/analyze_congestion.py --check-conservation).
 */

#include "benchutil.hh"
#include "nic/retransmit.hh"
#include "sim/fault.hh"

using namespace nifdy;

int
main(int argc, char **argv)
{
    setQuiet(true);
    BenchArgs args(argc, argv, 120000, 16);
    if (args.conf.getBool("help", false)) {
        std::fputs(experimentCliHelp().c_str(), stdout);
        return 0;
    }
    std::string topology = args.conf.getString("topology", "mesh2d");
    double corrupt = args.conf.getDouble("corrupt", 0.0);

    Table t("Robustness extension: heavy synthetic traffic on " +
            topology + " with in-fabric faults, " +
            std::to_string(args.nodes) + " nodes");
    t.header({"fault rate", "words delivered", "vs fault-free",
              "fabric drops", "corrupted", "retransmissions",
              "recovery mean", "dead peers"});

    SyntheticParams sp = SyntheticParams::heavy();
    std::uint64_t base = 0;
    for (double drop : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
        ExperimentConfig cfg;
        cfg.topology = topology;
        cfg.numNodes = args.nodes;
        cfg.nicKind = NicKind::lossy;
        cfg.seed = args.seed;
        cfg.msg.packetWords = 8;
        cfg.lossy.retxTimeout = static_cast<Cycle>(
            args.conf.getInt("timeout", 1500));
        cfg.lossy.backoffFactor = args.conf.getDouble("backoff", 2.0);
        cfg.lossy.maxRetxTimeout = static_cast<Cycle>(
            args.conf.getInt("maxTimeout", 12000));
        cfg.lossy.jitterFrac = args.conf.getDouble("jitter", 0.25);
        cfg.lossy.maxRetries = static_cast<int>(
            args.conf.getInt("retries", 0));
        cfg.fault.dropProb = drop;
        cfg.fault.corruptProb = corrupt;
        applyTelemetry(cfg, args.conf);
        Experiment exp(cfg);
        for (NodeId n = 0; n < args.nodes; ++n)
            exp.setWorkload(n, std::make_unique<SyntheticWorkload>(
                                   exp.proc(n), exp.msg(n),
                                   exp.barrier(), args.nodes, sp,
                                   args.seed));
        exp.runFor(args.cycles);

        std::uint64_t retx = 0;
        std::uint64_t recoveries = 0;
        std::uint64_t recoverySum = 0;
        for (NodeId n = 0; n < args.nodes; ++n) {
            auto &nic = dynamic_cast<LossyNifdyNic &>(exp.nic(n));
            retx += nic.retransmissions();
            recoveries += nic.recoveryLatency().count();
            recoverySum += nic.recoveryLatency().sum();
        }
        std::uint64_t words = exp.wordsDelivered();
        if (!base)
            base = words;
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f%%", drop * 100);
        char tag[32];
        std::snprintf(tag, sizeof(tag), "fault%.0f", drop * 100);
        recordAnatomy(exp, args, tag);
        recordCongestion(exp, args, tag);
        t.row({label, Table::num(static_cast<long>(words)),
               Table::num(double(words) / double(base), 3),
               Table::num(static_cast<long>(
                   exp.faults() ? exp.faults()->packetsDroppedInFabric()
                                : 0)),
               Table::num(static_cast<long>(
                   exp.faults() ? exp.faults()->packetsCorrupted()
                                : 0)),
               Table::num(static_cast<long>(retx)),
               recoveries ? Table::num(double(recoverySum) /
                                           double(recoveries),
                                       1)
                          : "-",
               Table::num(static_cast<long>(exp.totalDeadPeers()))});
    }
    args.emit(t);
    args.note("in-fabric losses are recovered end to end; backoff "
              "keeps the recovery traffic from compounding the "
              "fault rate.");
    return args.finish();
}
