/**
 * @file
 * Experiment harness: assembles a network, one NIC + processor +
 * message layer per node, and the workloads, exactly as the paper's
 * evaluation does. Provides the three standard NIC configurations
 * compared throughout Section 4 -- "none" (plain interface),
 * "buffers" (the same total buffering as NIFDY, no protocol), and
 * "nifdy" -- plus the Section 6.2 lossy variant, and the
 * per-topology best NIFDY parameters of Table 3.
 */

#ifndef NIFDY_HARNESS_EXPERIMENT_HH
#define NIFDY_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "coll/coll.hh"
#include "nic/nifdyparams.hh"
#include "nic/plainnic.hh"
#include "nic/retransmit.hh"
#include "proc/workload.hh"
#include "sim/anatomy.hh"
#include "sim/congestion.hh"
#include "sim/fault.hh"
#include "sim/metrics.hh"
#include "sim/profile.hh"
#include "sim/table.hh"
#include "sim/trace.hh"

namespace nifdy
{

class Config;
class RunReport;

/** Which network interface each node gets. */
enum class NicKind
{
    none,    //!< plain minimal interface
    buffers, //!< NIFDY's buffer budget without the protocol
    nifdy,   //!< the NIFDY unit
    lossy    //!< NIFDY + Section 6.2 retransmission extension
};

const char *nicKindName(NicKind kind);

/** Does the bare topology already deliver packets in order? */
bool topologyInOrder(const std::string &topology);

/** Table-3 style best NIFDY parameters for each topology. */
NifdyConfig bestNifdyParams(const std::string &topology);

struct ExperimentConfig
{
    std::string topology = "fattree";
    int numNodes = 64;
    NicKind nicKind = NicKind::nifdy;
    /** NIFDY parameters; defaulted from bestNifdyParams() unless
     * explicitly set (set nifdyExplicit). */
    NifdyConfig nifdy;
    bool nifdyExplicit = false;
    LossyConfig lossy;
    /** In-fabric fault injection (drops, corruption, link outages).
     * Probabilistic faults require nicKind == lossy. */
    FaultPlan fault;
    /** Endpoint fault injection: fail-stop crashes and restarts
     * with incarnation epochs (node.* knobs). */
    NodeFaultPlan nodeFault;
    /** Live peers reclaim protocol state (OPT entries, stalled bulk
     * dialogs) aimed at a silent peer after this many idle cycles;
     * 0 disables. Defaulted by experimentFromConfig() to 25000 when
     * a node-fault plan is active and the knob is unset. */
    Cycle nodeReclaim = 0;
    /** NIC-resident collectives (coll.* knobs): barrier offload and
     * the bcast/reduce engines. Off by default, and then the run is
     * byte-identical to pre-collective builds. */
    CollConfig coll;
    ProcParams proc;
    MessageParams msg;
    /** Let the software exploit in-order delivery when available. */
    bool exploitInOrder = true;
    /** Run with the invariant-audit layer attached (also enabled by
     * the NIFDY_AUDIT environment variable). */
    bool audit = false;
    /** Packet-lifecycle tracing (active when trace.path is set and
     * the trace hooks are compiled in; see NIFDY_TRACE). */
    TraceConfig trace;
    /** Periodic metric snapshots (active when metrics.path is set). */
    MetricsConfig metrics;
    /** Latency anatomy: per-packet stall-cause attribution
     * (anatomy.* knobs; off by default and then cost-free). */
    AnatomyConfig anatomy;
    /** Congestion observatory: per-link stall maps, per-flow
     * progress, victim/aggressor episodes (congestion.* knobs; off
     * by default and then cost-free). */
    CongestionConfig congestion;
    /** Host-cost profiler: per-component host-time and idle-work
     * attribution (profile.* knobs; off by default and then one
     * pointer test per cycle). */
    ProfileConfig profile;
    Cycle barrierLatency = 100;
    Cycle watchdog = 2000000;
    std::uint64_t seed = 1;
    /** Extra topology knobs (dims etc.); numNodes/seed overwritten. */
    NetworkParams net;
};

class Experiment
{
  public:
    explicit Experiment(const ExperimentConfig &cfg);
    ~Experiment();
    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    Kernel &kernel() { return kernel_; }
    Network &network() { return *net_; }
    Barrier &barrier() { return *barrier_; }
    PacketPool &pool() { return pool_; }
    int numNodes() const { return cfg_.numNodes; }
    const ExperimentConfig &config() const { return cfg_; }
    const NifdyConfig &nifdyConfig() const { return nifdyCfg_; }

    Nic &nic(NodeId n) { return *nics_.at(n); }
    Processor &proc(NodeId n) { return *procs_.at(n); }
    MessageLayer &msg(NodeId n) { return *msgs_.at(n); }
    Workload *workload(NodeId n) { return workloads_.at(n).get(); }

    /** The message layer's effective delivery-order mode. */
    bool inOrderDelivery() const { return inOrder_; }

    /** The attached invariant audit (nullptr when disabled). */
    Audit *audit() { return audit_.get(); }

    /** The fault injector (nullptr when the plan is empty). */
    FaultInjector *faults() { return injector_.get(); }

    /** The endpoint-fault driver (nullptr when the plan is empty). */
    NodeFaultDriver *nodeFaults() { return nodeDriver_.get(); }

    /** Node @p n's NIC collective engine (nullptr unless
     * coll.offload is on). */
    CollEngine *collEngine(NodeId n)
    {
        return collEngines_.empty() ? nullptr
                                    : collEngines_.at(n).get();
    }

    /** Has node @p n crashed at least once during this run? */
    bool nodeCrashedEver(NodeId n) const
    {
        return crashedEver_.at(n);
    }

    std::uint64_t nodeCrashes() const { return nodeCrashes_; }
    std::uint64_t nodeRestarts() const { return nodeRestarts_; }

    /** The packet-lifecycle tracer (nullptr when disabled). */
    Tracer *tracer() { return tracer_.get(); }

    /** The metric registry (nullptr when disabled). */
    Metrics *metrics() { return metrics_.get(); }

    /** The latency-anatomy sink (nullptr when disabled). */
    Anatomy *anatomy() { return anatomy_.get(); }

    /** The congestion observatory (nullptr when disabled). */
    CongestionObserver *congestion() { return congestion_.get(); }

    /** The host-cost profiler (nullptr when disabled). */
    Profiler *profiler() { return profiler_.get(); }
    const Profiler *profiler() const { return profiler_.get(); }

    //! @name Dead-peer reporting (graceful degradation)
    //! @{
    /** (reporting node, dead peer) pairs across all NIFDY NICs. */
    std::vector<std::pair<NodeId, NodeId>> deadPeerPairs() const;
    int totalDeadPeers() const
    {
        return static_cast<int>(deadPeerPairs().size());
    }
    //! @}

    /** Install a workload on node @p n (takes ownership). */
    void setWorkload(NodeId n, std::unique_ptr<Workload> w);

    /** All workloads report done(). */
    bool allDone() const;

    /** Nothing in flight anywhere (tests). */
    bool drained() const;

    /** Run a fixed number of cycles; returns cycles executed. */
    Cycle runFor(Cycle cycles);

    /**
     * Run until allDone() or the cycle budget runs out. When peers
     * have been declared dead, the run also stops once no progress
     * has been made for a grace period (the remaining work is
     * unreachable) and logs a dead-peer report, so a partitioned
     * network terminates with a diagnosis instead of hanging in
     * drain detection.
     */
    Cycle runUntilDone(Cycle maxCycles);

    //! @name Aggregate delivery statistics (data packets)
    //! @{
    std::uint64_t packetsDelivered() const;
    std::uint64_t wordsDelivered() const;
    std::uint64_t packetsSent() const;

    /**
     * One-line-per-metric run summary: delivery counts, latency,
     * protocol activity (acks, grants, retransmissions), fabric
     * utilization, and processor busy fraction.
     */
    Table statsTable() const;

    /**
     * Aggregate packet latency merged across every NIC (the source
     * of the p50/p95/p99 estimates in reports and snapshots).
     */
    Distribution mergedLatency() const;

    /**
     * Fill @p rep with this run's machine-readable summary: config
     * echo, goodput, latency distribution with percentiles,
     * protocol/fault/retransmission accounting, and the stats table.
     */
    void fillReport(RunReport &rep) const;
    //! @}

  private:
    /** Register the standard gauge/distribution set on metrics_. */
    void wireMetrics();

    /** NodeFaultDriver handler: crash or restart node @p n. */
    void onNodeFault(NodeId n, bool restart, Cycle now);

    ExperimentConfig cfg_;
    NifdyConfig nifdyCfg_;
    bool inOrder_ = false;
    Kernel kernel_;
    PacketPool pool_;
    std::unique_ptr<Network> net_;
    /** After net_: routers keep a raw pointer to the injector. */
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<Barrier> barrier_;
    std::vector<std::unique_ptr<Nic>> nics_;
    /** Downcast cache of nics_ for NIFDY kinds (nifdy and lossy). */
    std::vector<NifdyNic *> nifdyNics_;
    /** Downcast cache of nics_ when nicKind == lossy. */
    std::vector<LossyNifdyNic *> lossyNics_;
    /** Per-node NIC collective engines (empty unless coll.offload).
     * Teardown order vs nics_ is irrelevant: a NIC only touches its
     * engine inside step(). */
    std::vector<std::unique_ptr<CollEngine>> collEngines_;
    std::vector<std::unique_ptr<Processor>> procs_;
    std::vector<std::unique_ptr<MessageLayer>> msgs_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    /** Endpoint-fault schedule executor (nullptr = empty plan). */
    std::unique_ptr<NodeFaultDriver> nodeDriver_;
    /** Per-node: crashed at least once (its workload is excused). */
    std::vector<bool> crashedEver_;
    bool anyCrashed_ = false;
    std::uint64_t nodeCrashes_ = 0;
    std::uint64_t nodeRestarts_ = 0;
    /** Host-cost profiler; declared before the telemetry sinks so
     * it outlives them -- the tracer's close() charges its file
     * write to the profiler's trace-emit phase. */
    std::unique_ptr<Profiler> profiler_;
    /** Telemetry sinks; flushed by the destructor before audit_
     * (below) detaches. The anatomy sink precedes the tracer: its
     * final transitions render into the trace buffer. */
    std::unique_ptr<Anatomy> anatomy_;
    /** Congestion observatory; like the anatomy sink, its finish()
     * (episode close-out) renders into the trace buffer, so it too
     * precedes the tracer. */
    std::unique_ptr<CongestionObserver> congestion_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<Metrics> metrics_;
    /** Last member: destroyed first, so teardown releases in the
     * layers above are not audited. */
    std::unique_ptr<Audit> audit_;
};

/**
 * Build an ExperimentConfig from the key=value Config/CLI layer, so
 * every experiment -- including lossy and fault-injected ones -- is
 * runnable without recompiling. Unknown values and out-of-range
 * knobs are fatal(). See experimentCliHelp() for the key list.
 */
ExperimentConfig experimentFromConfig(const Config &conf);

/** Human-readable key=value reference for experimentFromConfig(). */
std::string experimentCliHelp();

/**
 * Machine-readable knob reference: one line per config key in the
 * form "name<TAB>default<TAB>doc" (run_experiment --list-knobs).
 * tools/lint.py parses the underlying table, so every knob listed
 * here must also be documented in DESIGN.md.
 */
std::string experimentKnobList();

} // namespace nifdy

#endif // NIFDY_HARNESS_EXPERIMENT_HH
