file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_em3d_light.dir/bench_fig7_em3d_light.cc.o"
  "CMakeFiles/bench_fig7_em3d_light.dir/bench_fig7_em3d_light.cc.o.d"
  "bench_fig7_em3d_light"
  "bench_fig7_em3d_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_em3d_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
