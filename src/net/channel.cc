#include "net/channel.hh"

#include "sim/congestion.hh"
#include "sim/log.hh"

namespace nifdy
{

Channel::Channel(const ChannelParams &params) : params_(params)
{
    panic_if(params_.cyclesPerFlit < 1, "cyclesPerFlit must be >= 1");
    panic_if(params_.latency < 0, "negative channel latency");
}

int
Channel::classRate(NetClass cls) const
{
    (void)cls;
    // Time slicing halves the bandwidth each class sees.
    return params_.timeSliced ? params_.cyclesPerFlit * numNetClasses
                              : params_.cyclesPerFlit;
}

NIFDY_HOT bool
Channel::canPush(NetClass cls, Cycle now) const
{
    if (downAt(now))
        return false;
    int slot = params_.timeSliced ? static_cast<int>(cls) : 0;
    return nextFree_[slot] <= now;
}

void
Channel::addDownWindow(Cycle from, Cycle until)
{
    panic_if(until != 0 && until <= from,
             "empty channel down window [%llu, %llu)",
             static_cast<unsigned long long>(from),
             static_cast<unsigned long long>(until));
    down_.push_back({from, until});
}

bool
Channel::downAt(Cycle now) const
{
    for (const DownWindow &w : down_)
        if (now >= w.from && (w.until == 0 || now < w.until))
            return true;
    return false;
}

NIFDY_HOT void
Channel::push(const Flit &flit, Cycle now)
{
    panic_if(!flit.valid(), "pushing invalid flit");
    NetClass cls = flit.pkt->netClass;
    panic_if(!canPush(cls, now), "push on busy channel");
    int slot = params_.timeSliced ? static_cast<int>(cls) : 0;
    nextFree_[slot] = now + classRate(cls);
    Cycle arrival = now + classRate(cls) + params_.latency;
    flits_.push_back({arrival, flit}); // nifdy:alloc-ok(Ring grows to high-water then reuses)
    ++totalFlits_;
    ++classFlits_[static_cast<int>(cls)];
    congestion::onLinkFlit(this, flit, now);
    panic_if(capacityFlits_ > 0 && inFlight() > capacityFlits_,
             "channel over capacity: %d flits in flight, "
             "credit-bounded capacity %d (%s)",
             inFlight(), capacityFlits_,
             flit.pkt->toString().c_str());
}

NIFDY_HOT bool
Channel::hasFlit(Cycle now) const
{
    return !flits_.empty() && flits_.front().first <= now;
}

NIFDY_HOT Flit
Channel::pop(Cycle now)
{
    panic_if(!hasFlit(now), "pop on empty channel");
    Flit f = flits_.front().second;
    flits_.pop_front();
    return f;
}

NIFDY_HOT void
Channel::pushCredit(int vc, Cycle now)
{
    credits_.push_back({now + 1, vc}); // nifdy:alloc-ok(Ring grows to high-water then reuses)
}

NIFDY_HOT bool
Channel::hasCredit(Cycle now) const
{
    return !credits_.empty() && credits_.front().first <= now;
}

NIFDY_HOT int
Channel::popCredit(Cycle now)
{
    panic_if(!hasCredit(now), "popCredit on empty credit queue");
    int vc = credits_.front().second;
    credits_.pop_front();
    return vc;
}

} // namespace nifdy
