/**
 * @file
 * Fault-tolerant campaign engine: journaled config sweeps.
 *
 * A campaign spec (campaign-spec-1 JSON: a matrix of experiment
 * knobs crossed with a seed list) expands into a deterministic job
 * list; the engine fans the jobs out across parallel worker
 * subprocesses (examples/run_experiment by default), records every
 * state transition in a write-ahead journal (src/campaign/journal),
 * supervises workers against crashes, hangs and truncated reports
 * (src/campaign/supervisor), retries failures with jittered
 * exponential backoff up to a cap, and aggregates the surviving
 * nifdy-report-1 documents into one comparative campaign-aggregate-1
 * report (src/campaign/aggregate).
 *
 * The robustness contract (asserted by tests/test_campaign.cc and
 * the CI `campaign` job): `kill -9` of the engine at any point,
 * followed by --resume, yields an aggregate byte-identical to an
 * uninterrupted run -- no job lost, none double-counted -- and a job
 * that keeps failing is marked failed after the retry cap instead of
 * wedging the sweep. See DESIGN.md section 11.
 */

#ifndef NIFDY_CAMPAIGN_ENGINE_HH
#define NIFDY_CAMPAIGN_ENGINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nifdy
{

class Config;

inline constexpr const char *campaignSpecSchema = "campaign-spec-1";

/** FNV-1a 64-bit over @p s (job and spec identity). */
std::uint64_t fnv1a64(std::string_view s);
/** 16-digit lowercase hex rendering of @p v. */
std::string hex16(std::uint64_t v);

/** One expanded job: a complete worker knob assignment. */
struct CampaignJob
{
    int index = 0;
    /** Full key=value set: fixed + one matrix assignment + seed. */
    std::map<std::string, std::string> knobs;
    /** fnv1a64 of canonical(); identifies the job in the journal. */
    std::uint64_t hash = 0;

    /** Sorted "k=v\n" concatenation (hash input). */
    std::string canonical() const;
    std::string hex() const { return hex16(hash); }
};

/** Parsed campaign-spec-1 document. */
struct CampaignSpec
{
    std::string name;
    /** Knobs shared by every job. */
    std::map<std::string, std::string> fixed;
    /** Swept knobs, sorted by key; values in spec order. */
    std::vector<std::pair<std::string, std::vector<std::string>>>
        matrix;
    /** Workload seeds; each matrix point runs once per seed. */
    std::vector<std::string> seeds;
    /** campaign.* engine knobs embedded in the spec (defaults that
     * the command line can still override). */
    std::map<std::string, std::string> engineKnobs;

    /** Parse and validate (fatal() on malformed specs). */
    static CampaignSpec parse(const std::string &text);
    static CampaignSpec parseFile(const std::string &path);

    /**
     * The deterministic job list: the cartesian product of the
     * matrix (sorted keys, rightmost key varies fastest) crossed
     * with the seed list (innermost). @p jobTimeout > 0 adds a
     * timeout=N knob to every job.
     */
    std::vector<CampaignJob> expand(long jobTimeout = 0) const;
};

/** Identity of the expanded job list: two specs that expand to the
 * same jobs may resume each other; anything else must refuse. */
std::uint64_t campaignSpecHash(const std::vector<CampaignJob> &jobs);

/** Engine policy; campaign.* knobs (see campaignKnobList()). */
struct CampaignOptions
{
    std::string dir;      //!< journal, reports/, logs/, aggregate
    std::vector<std::string> workerCmd; //!< argv prefix for workers
    bool resume = false;
    int workers = 4;
    int retryMax = 3;
    double backoffBaseMs = 100;
    double backoffFactor = 2;
    double backoffMaxMs = 5000;
    double jitterFrac = 0.25;
    double wallTimeoutMs = 30000;
    double termGraceMs = 2000;
    long jobTimeout = 0;
    double pollMs = 2;
    std::uint64_t seed = 1;
    long failpoint = 0; //!< _exit(137) after N journal appends

    void validate() const;
};

/** Read the campaign.* knobs out of @p conf (range-checked). */
CampaignOptions campaignFromConfig(const Config &conf);

/** Human-readable campaign.* key reference. */
std::string campaignCliHelp();

/** Machine-readable "name<TAB>default<TAB>doc" knob lines (parsed by
 * tools/nifdylint; every knob must be documented in DESIGN.md). */
std::string campaignKnobList();

/** Final state of one job after a campaign (test introspection). */
struct JobOutcome
{
    bool done = false;   //!< aggregated exactly once
    bool failed = false; //!< retries exhausted
    int fails = 0;       //!< failed attempts observed
    std::string lastKind; //!< last failure kind ("" if none)
    std::string reportPath; //!< validated report (done jobs)
};

class CampaignEngine
{
  public:
    static constexpr int exitOk = 0;
    /** Some jobs exhausted their retries; the aggregate still
     * covers every other job (graceful degradation). */
    static constexpr int exitDegraded = 2;

    CampaignEngine(CampaignSpec spec, CampaignOptions opts);

    /**
     * Run (or --resume) the campaign to completion and write
     * <dir>/aggregate.json. Returns exitOk or exitDegraded;
     * fatal() on unusable state (e.g. resume spec mismatch).
     */
    int execute();

    const std::vector<CampaignJob> &jobs() const { return jobs_; }
    const std::vector<JobOutcome> &outcomes() const
    {
        return outcomes_;
    }
    std::uint64_t specHash() const { return specHash_; }
    std::string aggregatePath() const;
    std::string journalPath() const;

  private:
    std::string reportPath(const CampaignJob &job, int attempt) const;
    std::string logPath(const CampaignJob &job, int attempt) const;
    /** Replay the journal into outcomes_ (resume path). */
    void replayJournal();
    /** Jittered exponential backoff after @p fails failures. */
    double backoffMs(const CampaignJob &job, int fails) const;

    CampaignSpec spec_;
    CampaignOptions opts_;
    std::vector<CampaignJob> jobs_;
    std::vector<JobOutcome> outcomes_;
    std::uint64_t specHash_ = 0;
};

} // namespace nifdy

#endif // NIFDY_CAMPAIGN_ENGINE_HH
