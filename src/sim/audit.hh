/**
 * @file
 * Simulator-wide invariant-audit layer.
 *
 * NIFDY's correctness claims are invariants: at most one outstanding
 * scalar packet per destination (and at most O overall) in the OPT,
 * bulk windows bounded by W with sequence numbers inside seqSpace(),
 * credit-bounded buffer occupancy everywhere, and in-order delivery
 * per (source, destination) even over adaptive networks. The audit
 * layer checks them continuously instead of only at end of run: an
 * Audit object is a registry of InvariantChecker objects that the
 * Kernel steps once per cycle (Kernel::setAudit), fed by small
 * observer hooks in PacketPool, Channel, Router, and the NICs.
 *
 * Cost model:
 *  - compiled out entirely with -DNIFDY_AUDIT=OFF (the hook shims
 *    below become empty inline functions);
 *  - when compiled in, a hook costs one pointer test until an Audit
 *    is activated at run time (Experiment/harness `audit` flag or
 *    the NIFDY_AUDIT=1 environment variable).
 *
 * On a violation the offending checker panics with the full
 * provenance trail of the packet involved (alloc, send, inject,
 * every router hop, delivery, consumption, release).
 */

#ifndef NIFDY_SIM_AUDIT_HH
#define NIFDY_SIM_AUDIT_HH

#ifndef NIFDY_AUDIT_ENABLED
#define NIFDY_AUDIT_ENABLED 0
#endif

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nifdy
{

struct Packet;
class Channel;
class Nic;
class Router;
class Audit;

/**
 * One continuously checked invariant. Subclasses override the event
 * hooks they care about and/or endCycle() for polled checks over the
 * components the owning Audit watches. Violations are reported with
 * fail(), which panics with the packet's provenance trail.
 */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    /** Short identifier, quoted in violation reports. */
    virtual const char *name() const = 0;

    /** Polled check, run once per cycle after every component. */
    virtual void endCycle(Cycle now);

    /** End-of-run check (call after the simulation has drained). */
    virtual void finish();

    //! @name Event hooks (defaults do nothing)
    //! @{
    virtual void onAlloc(const Packet &pkt);
    virtual void onSend(const Packet &pkt, NodeId node);
    virtual void onInject(const Packet &pkt, NodeId node);
    virtual void onHop(const Packet &pkt, int routerId);
    virtual void onDeliver(const Packet &pkt, NodeId node);
    virtual void onConsume(const Packet &pkt, NodeId node,
                           const char *why);
    virtual void onDrop(const Packet &pkt, NodeId node,
                        const char *why);
    /**
     * A fault injector swallowed the packet inside the fabric.
     * Default: forwards to onDrop() with node = invalidNode, so
     * lifecycle conservation treats the injected loss as a
     * legitimately terminal event.
     */
    virtual void onFabricDrop(const Packet &pkt, int routerId,
                              const char *why);
    /** A fault injector corrupted the packet at @p routerId. */
    virtual void onCorrupt(const Packet &pkt, int routerId);
    /** A NIC retransmitted: @p pkt is the clone (cloneOf/attempt
     * carry its provenance). */
    virtual void onRetransmit(const Packet &pkt, NodeId node);
    virtual void onRelease(const Packet &pkt);
    /** Node @p node fail-stopped at cycle @p now. */
    virtual void onNodeCrash(NodeId node, Cycle now);
    /** Node @p node came back cold with incarnation @p epoch. */
    virtual void onNodeRestart(NodeId node, std::uint32_t epoch,
                               Cycle now);
    //! @}

    /** The Audit this checker is registered with (set on add()). */
    Audit *audit() const { return audit_; }

  protected:
    /** Report a violation involving @p pkt; never returns. */
    [[noreturn]] void fail(const Packet &pkt,
                           const std::string &msg) const;
    /** Report a violation with no single packet involved. */
    [[noreturn]] void fail(const std::string &msg) const;

  private:
    friend class Audit;
    Audit *audit_ = nullptr;
};

/**
 * The audit registry: owns the checkers, fans simulation events out
 * to them, keeps per-packet provenance trails, and knows which
 * components (NICs, routers, channels) the polled checks inspect.
 *
 * Constructing an Audit makes it the current event sink (a stack is
 * kept so nested scopes in tests behave); destroying it pops it.
 */
class Audit
{
  public:
    Audit();
    ~Audit();
    Audit(const Audit &) = delete;
    Audit &operator=(const Audit &) = delete;

    /** The active event sink, or nullptr when auditing is off. */
    static Audit *current();

    /** True when the NIFDY_AUDIT environment variable enables
     * auditing at run time (value not "0"/"off"/""). */
    static bool envEnabled();

    /** Register a checker (takes ownership). */
    void add(std::unique_ptr<InvariantChecker> checker);

    /**
     * Install the standard checker set: packet lifecycle, OPT/bulk
     * discipline, capacity, and (when @p expectInOrder) per
     * (src, dst) delivery ordering.
     */
    void installStandardCheckers(bool expectInOrder);

    //! @name Components inspected by polled checks
    //! @{
    struct WatchedChannel
    {
        Channel *ch;
        int capacityFlits; //!< 0 = use the channel's own capacity
    };

    void watchNic(Nic *nic);
    void watchRouter(Router *router);
    void watchChannel(Channel *ch, int capacityFlits = 0);

    const std::vector<Nic *> &nics() const { return nics_; }
    const std::vector<Router *> &routers() const { return routers_; }
    const std::vector<WatchedChannel> &channels() const
    {
        return channels_;
    }
    //! @}

    //! @name Event fan-out (called through the shims below)
    //! @{
    void alloc(const Packet &pkt);
    void send(const Packet &pkt, NodeId node);
    void inject(const Packet &pkt, NodeId node);
    void hop(const Packet &pkt, int routerId);
    void deliver(const Packet &pkt, NodeId node);
    void consume(const Packet &pkt, NodeId node, const char *why);
    void drop(const Packet &pkt, NodeId node, const char *why);
    void fabricDrop(const Packet &pkt, int routerId, const char *why);
    void corrupt(const Packet &pkt, int routerId);
    void retransmit(const Packet &pkt, NodeId node);
    void release(const Packet &pkt);
    void nodeCrash(NodeId node, Cycle now);
    void nodeRestart(NodeId node, std::uint32_t epoch, Cycle now);
    //! @}

    /**
     * Declare that fault injection is active this run. While false
     * (the default) the fault-discipline checker treats any in-fabric
     * drop or corruption as a simulator bug -- a lossless fabric must
     * not lose packets.
     */
    void setExpectFaults(bool expect) { expectFaults_ = expect; }
    bool expectFaults() const { return expectFaults_; }

    /** Declare that an endpoint fault plan is active this run. While
     * false, the epoch-discipline checker treats any node crash or
     * restart as a simulator bug. */
    void setExpectNodeFaults(bool expect) { expectNodeFaults_ = expect; }
    bool expectNodeFaults() const { return expectNodeFaults_; }

    //! @name Fault-aware accounting
    //! @{
    std::uint64_t fabricDrops() const { return fabricDrops_; }
    std::uint64_t corruptions() const { return corruptions_; }
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t nodeCrashes() const { return nodeCrashes_; }
    std::uint64_t nodeRestarts() const { return nodeRestarts_; }
    //! @}

    /** Run every checker's polled check; the Kernel calls this after
     * all components have stepped cycle @p now. */
    void endCycle(Cycle now);

    /** Run end-of-run checks (call once the simulation drained). */
    void finish();

    /** Render the recorded provenance trail of packet @p pktId. */
    std::string provenance(std::uint64_t pktId) const;

    /** Events dispatched since construction (tests/reporting). */
    std::uint64_t eventsSeen() const { return eventsSeen_; }

  private:
    void record(const Packet &pkt, std::string event);

    std::vector<std::unique_ptr<InvariantChecker>> checkers_;
    std::vector<Nic *> nics_;
    std::vector<Router *> routers_;
    std::vector<WatchedChannel> channels_;
    /** Provenance trails keyed by packet id (pruned on release). */
    struct Trail;
    std::unique_ptr<Trail> trails_;
    std::uint64_t eventsSeen_ = 0;
    bool expectFaults_ = false;
    bool expectNodeFaults_ = false;
    std::uint64_t fabricDrops_ = 0;
    std::uint64_t corruptions_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t nodeCrashes_ = 0;
    std::uint64_t nodeRestarts_ = 0;
};

/**
 * Observer hook shims. Components call these unconditionally; they
 * compile to nothing with -DNIFDY_AUDIT=OFF and to one pointer test
 * while no Audit is active.
 */
namespace audit
{

inline Audit *
sink()
{
#if NIFDY_AUDIT_ENABLED
    return Audit::current();
#else
    return nullptr;
#endif
}

inline void
onAlloc(const Packet &pkt)
{
    if (Audit *a = sink())
        a->alloc(pkt);
    (void)pkt;
}

inline void
onSend(const Packet &pkt, NodeId node)
{
    if (Audit *a = sink())
        a->send(pkt, node);
    (void)pkt;
    (void)node;
}

inline void
onInject(const Packet &pkt, NodeId node)
{
    if (Audit *a = sink())
        a->inject(pkt, node);
    (void)pkt;
    (void)node;
}

inline void
onHop(const Packet &pkt, int routerId)
{
    if (Audit *a = sink())
        a->hop(pkt, routerId);
    (void)pkt;
    (void)routerId;
}

inline void
onDeliver(const Packet &pkt, NodeId node)
{
    if (Audit *a = sink())
        a->deliver(pkt, node);
    (void)pkt;
    (void)node;
}

inline void
onConsume(const Packet &pkt, NodeId node, const char *why)
{
    if (Audit *a = sink())
        a->consume(pkt, node, why);
    (void)pkt;
    (void)node;
    (void)why;
}

inline void
onDrop(const Packet &pkt, NodeId node, const char *why)
{
    if (Audit *a = sink())
        a->drop(pkt, node, why);
    (void)pkt;
    (void)node;
    (void)why;
}

inline void
onFabricDrop(const Packet &pkt, int routerId, const char *why)
{
    if (Audit *a = sink())
        a->fabricDrop(pkt, routerId, why);
    (void)pkt;
    (void)routerId;
    (void)why;
}

inline void
onCorrupt(const Packet &pkt, int routerId)
{
    if (Audit *a = sink())
        a->corrupt(pkt, routerId);
    (void)pkt;
    (void)routerId;
}

inline void
onRetransmit(const Packet &pkt, NodeId node)
{
    if (Audit *a = sink())
        a->retransmit(pkt, node);
    (void)pkt;
    (void)node;
}

inline void
onRelease(const Packet &pkt)
{
    if (Audit *a = sink())
        a->release(pkt);
    (void)pkt;
}

inline void
onNodeCrash(NodeId node, Cycle now)
{
    if (Audit *a = sink())
        a->nodeCrash(node, now);
    (void)node;
    (void)now;
}

inline void
onNodeRestart(NodeId node, std::uint32_t epoch, Cycle now)
{
    if (Audit *a = sink())
        a->nodeRestart(node, epoch, now);
    (void)node;
    (void)epoch;
    (void)now;
}

} // namespace audit

} // namespace nifdy

#endif // NIFDY_SIM_AUDIT_HH
