# Empty dependencies file for bench_fig7_em3d_light.
# This may be replaced when dependencies are built.
