#include "sim/table.hh"

#include <cstdio>
#include <sstream>

#include "sim/log.hh"

namespace nifdy
{

void
Table::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::num(long v)
{
    return std::to_string(v);
}

std::string
Table::num(unsigned long v)
{
    return std::to_string(v);
}

std::string
Table::str() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i + 1 < width.size() ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    printRaw(str() + "\n");
}

} // namespace nifdy
