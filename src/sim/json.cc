#include "sim/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace nifdy
{

namespace
{

template <typename T>
std::string
toCharsStr(T v)
{
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec; // 64 bytes always suffice for arithmetic types
    return std::string(buf, end);
}

} // namespace

std::string
JsonWriter::numStr(double v)
{
    // JSON has no NaN/Inf; pin them to null-adjacent sentinels that
    // still parse (tests assert finite values anyway).
    if (!std::isfinite(v))
        return "0";
    return toCharsStr(v);
}

std::string
JsonWriter::numStr(std::uint64_t v)
{
    return toCharsStr(v);
}

std::string
JsonWriter::numStr(std::int64_t v)
{
    return toCharsStr(v);
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (afterKey_)
        return; // key() already placed the comma
    if (!hasValue_.empty() && hasValue_.back())
        out_ += ',';
}

void
JsonWriter::noteValue()
{
    afterKey_ = false;
    if (!hasValue_.empty())
        hasValue_.back() = true;
}

void
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasValue_.push_back(false);
    afterKey_ = false;
}

void
JsonWriter::endObject()
{
    out_ += '}';
    hasValue_.pop_back();
    noteValue();
}

void
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasValue_.push_back(false);
    afterKey_ = false;
}

void
JsonWriter::endArray()
{
    out_ += ']';
    hasValue_.pop_back();
    noteValue();
}

void
JsonWriter::key(std::string_view k)
{
    if (!hasValue_.empty() && hasValue_.back())
        out_ += ',';
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    afterKey_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    separate();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    noteValue();
}

void
JsonWriter::value(double v)
{
    separate();
    out_ += numStr(v);
    noteValue();
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    out_ += numStr(v);
    noteValue();
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ += numStr(v);
    noteValue();
}

void
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    noteValue();
}

void
JsonWriter::valueNull()
{
    separate();
    out_ += "null";
    noteValue();
}

void
JsonWriter::raw(std::string_view json)
{
    separate();
    out_ += json;
    noteValue();
}

} // namespace nifdy
