#!/usr/bin/env python3
"""Host-cost blame analyzer and perf gate for profiler reports.

Consumes the nifdy-report-1 JSON written by `run_experiment --json`
(profile.enabled=true), any bench's `--json` flag, or bench_kernel's
BENCH_kernel.json. Three data families (DESIGN.md section 12):

  metrics  profile[.<tag>].steps.<class> / .idlesteps.<class>
           deterministic step/idle counters (the idle-work account)
  profile  host[.<tag>].class.<class>.ns / .phase.<phase>.ns /
           .loop.ns -- nondeterministic host-time figures, quarantined
           in the report's "profile" section
  profile  kernel.<tag>.wall.ns / .cycles.persec / .flits.persec --
           bench_kernel throughput figures (deterministic window
           counts under kernel.<tag>.* in metrics)

Usage:
  analyze_profile.py report.json              ranked host-cost blame
                                              per class + phase, and
                                              the idle-fraction
                                              summary, per group
  analyze_profile.py report.json --compare A B
                                              host-cost share shift
                                              between two groups
  analyze_profile.py current.json --gate baseline.json
                                              perf regression gate:
                                              fail when a bench
                                              config's throughput
                                              falls below
                                              --min-ratio x baseline
                                              (generous default for
                                              runner noise)
  analyze_profile.py report.json --validate-bench
                                              schema + required-key
                                              check for bench_kernel
                                              reports (CI)

Exit status: 0 clean, 1 on validation/gate failure, missing data, or
unknown group tags.
"""

import argparse
import re
import sys

from reportlib import load_report

# Mirrors profPhaseSlugs in src/sim/profile.hh.
PHASES = ["audit", "metrics", "trace", "self"]

LOOP_RE = re.compile(r"^host\.(?:(?P<tag>.+)\.)?loop\.ns$")
CLASS_RE = re.compile(
    r"^host\.(?:(?P<tag>.+)\.)?class\.(?P<cls>[a-z-]+)\.ns$")
STEPS_RE = re.compile(
    r"^profile\.(?:(?P<tag>.+)\.)?steps\.(?P<cls>[a-z-]+)$")
BENCH_RE = re.compile(r"^kernel\.(?P<tag>[a-z0-9]+)\.cycles$")


class Group:
    """One profiled run: host-ns blame + idle-work account."""

    def __init__(self, tag, metrics, profile):
        self.tag = tag or "(run)"
        mid = f"{tag}." if tag else ""
        self.loop_ns = int(profile[f"host.{mid}loop.ns"])
        self.class_ns = {}
        self.phase_ns = {}
        for ph in PHASES:
            key = f"host.{mid}phase.{ph}.ns"
            if key in profile:
                self.phase_ns[ph] = int(profile[key])
        for key, v in profile.items():
            m = CLASS_RE.match(key)
            if m and (m.group("tag") or "") == (tag or ""):
                self.class_ns[m.group("cls")] = int(v)
        self.steps = {}
        self.idle = {}
        for key, v in metrics.items():
            m = STEPS_RE.match(key)
            if m and (m.group("tag") or "") == (tag or ""):
                cls = m.group("cls")
                self.steps[cls] = int(v)
                idle_key = f"profile.{mid}idlesteps.{cls}"
                self.idle[cls] = int(metrics.get(idle_key, 0))

    def blame(self):
        """(label, ns) rows: classes + in-loop phases, ranked."""
        rows = [(f"class {c}", ns)
                for c, ns in self.class_ns.items()]
        rows += [(f"phase {p}", ns)
                 for p, ns in self.phase_ns.items() if p != "trace"]
        return sorted(rows, key=lambda r: -r[1])


def find_groups(doc):
    metrics = doc.get("metrics", {})
    profile = doc.get("profile", {})
    groups = {}
    for key in profile:
        m = LOOP_RE.match(key)
        if m:
            tag = m.group("tag") or ""
            groups[tag] = Group(tag, metrics, profile)
    return groups


def print_group(g):
    print(f"== host-cost blame: {g.tag} "
          f"(loop total {g.loop_ns / 1e6:.2f} ms) ==")
    for label, ns in g.blame():
        share = ns / g.loop_ns if g.loop_ns else 0.0
        print(f"  {label:<22} {ns / 1e6:>10.3f} ms  {share:>6.1%}")
    trace_ns = g.phase_ns.get("trace", 0)
    if trace_ns:
        print(f"  {'phase trace (off-loop)':<22} "
              f"{trace_ns / 1e6:>10.3f} ms")
    if g.steps:
        print("  idle-work account (idle steps / steps):")
        for cls in sorted(g.steps):
            steps, idle = g.steps[cls], g.idle[cls]
            frac = idle / steps if steps else 0.0
            print(f"    {cls:<20} {idle:>12} / {steps:<12} "
                  f"{frac:>6.1%} idle")
    print()


def print_bench(doc):
    metrics = doc.get("metrics", {})
    profile = doc.get("profile", {})
    tags = sorted(m.group("tag") for m in
                  (BENCH_RE.match(k) for k in metrics) if m)
    if not tags:
        return
    print("== kernel throughput (nondeterministic host rates) ==")
    for tag in tags:
        cps = float(profile.get(f"kernel.{tag}.cycles.persec", 0))
        fps = float(profile.get(f"kernel.{tag}.flits.persec", 0))
        print(f"  {tag:<16} {cps:>14,.0f} cycles/s "
              f"{fps:>14,.0f} flit events/s")
    ov = profile.get("kernel.profile.overheadfrac")
    if ov is not None:
        print(f"  profiler overhead on fig2heavy: {float(ov):.1%}")
    print()


def cmd_compare(groups, a, b):
    for tag in (a, b):
        if tag not in groups:
            sys.exit(f"unknown group tag {tag!r}; have: "
                     f"{', '.join(sorted(groups)) or '(none)'}")
    ga, gb = groups[a], groups[b]
    print(f"== host-cost share shift: {ga.tag} -> {gb.tag} ==")
    labels = sorted(set(dict(ga.blame())) | set(dict(gb.blame())))
    da, db = dict(ga.blame()), dict(gb.blame())
    for label in labels:
        sa = da.get(label, 0) / ga.loop_ns if ga.loop_ns else 0.0
        sb = db.get(label, 0) / gb.loop_ns if gb.loop_ns else 0.0
        print(f"  {label:<22} {sa:>7.1%} -> {sb:>7.1%} "
              f"({sb - sa:+.1%})")
    return 0


def bench_rates(doc):
    """tag -> (cycles/sec, flits/sec) from a bench_kernel report."""
    metrics = doc.get("metrics", {})
    profile = doc.get("profile", {})
    rates = {}
    for key in metrics:
        m = BENCH_RE.match(key)
        if not m:
            continue
        tag = m.group("tag")
        rates[tag] = (
            float(profile.get(f"kernel.{tag}.cycles.persec", 0)),
            float(profile.get(f"kernel.{tag}.flits.persec", 0)))
    return rates


def cmd_gate(doc, baseline_path, min_ratio):
    base = load_report(baseline_path)
    cur_rates, base_rates = bench_rates(doc), bench_rates(base)
    if not base_rates:
        sys.exit(f"{baseline_path}: no kernel.<tag>.* bench data")
    failed = False
    for tag, (bcps, bfps) in sorted(base_rates.items()):
        if tag not in cur_rates:
            print(f"GATE FAIL {tag}: missing from current report")
            failed = True
            continue
        ccps, cfps = cur_rates[tag]
        # Gate flit events/sec where the config moves traffic;
        # the idle fabric has none, so gate raw cycles/sec there.
        base_rate, cur_rate, unit = (
            (bfps, cfps, "flit events/s") if bfps > 0
            else (bcps, ccps, "cycles/s"))
        if base_rate <= 0:
            continue
        ratio = cur_rate / base_rate
        verdict = "ok" if ratio >= min_ratio else "FAIL"
        print(f"gate {tag:<12} {cur_rate:>14,.0f} {unit} "
              f"(baseline {base_rate:,.0f}, ratio {ratio:.2f}, "
              f"floor {min_ratio:.2f}) {verdict}")
        if ratio < min_ratio:
            failed = True
    if failed:
        print("perf gate FAILED: throughput regressed beyond the "
              "noise floor")
        return 1
    print("perf gate passed")
    return 0


def cmd_validate_bench(doc):
    metrics = doc.get("metrics", {})
    profile = doc.get("profile", {})
    tags = [m.group("tag") for m in
            (BENCH_RE.match(k) for k in metrics) if m]
    errors = []
    if not tags:
        errors.append("no kernel.<tag>.cycles metrics")
    if not profile.get("nondeterministic"):
        errors.append('profile section missing its '
                      '"nondeterministic": true marker')
    for tag in tags:
        for key in (f"kernel.{tag}.flits",):
            if key not in metrics:
                errors.append(f"missing metric {key}")
        for key in (f"kernel.{tag}.wall.ns",
                    f"kernel.{tag}.cycles.persec"):
            if key not in profile:
                errors.append(f"missing profile entry {key}")
    for err in errors:
        print(f"VALIDATE FAIL: {err}")
    if not errors:
        print(f"bench report valid: configs {', '.join(sorted(tags))}")
    return 1 if errors else 0


def main():
    ap = argparse.ArgumentParser(
        description="host-cost blame / idle-work / perf-gate "
                    "analyzer for profiler reports")
    ap.add_argument("report", help="nifdy-report-1 JSON file")
    ap.add_argument("--compare", nargs=2, metavar=("A", "B"),
                    help="blame share shift between two groups")
    ap.add_argument("--gate", metavar="BASELINE",
                    help="fail on throughput regression vs this "
                         "bench_kernel baseline report")
    ap.add_argument("--min-ratio", type=float, default=0.25,
                    help="gate floor: current/baseline rate "
                         "(default %(default)s -- generous, CI "
                         "runners are noisy)")
    ap.add_argument("--validate-bench", action="store_true",
                    help="validate bench_kernel report structure")
    args = ap.parse_args()

    doc = load_report(args.report)
    if args.validate_bench:
        return cmd_validate_bench(doc)
    if args.gate:
        return cmd_gate(doc, args.gate, args.min_ratio)

    groups = find_groups(doc)
    if args.compare:
        return cmd_compare(groups, *args.compare)

    print_bench(doc)
    if not groups:
        if bench_rates(doc):
            return 0
        sys.exit(f"{args.report}: no profiler data (run with "
                 "profile.enabled=true)")
    for tag in sorted(groups):
        print_group(groups[tag])
    return 0


if __name__ == "__main__":
    sys.exit(main())
