file(REMOVE_RECURSE
  "CMakeFiles/nifdy_net.dir/net/butterfly.cc.o"
  "CMakeFiles/nifdy_net.dir/net/butterfly.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/channel.cc.o"
  "CMakeFiles/nifdy_net.dir/net/channel.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/fattree.cc.o"
  "CMakeFiles/nifdy_net.dir/net/fattree.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/mesh.cc.o"
  "CMakeFiles/nifdy_net.dir/net/mesh.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/packet.cc.o"
  "CMakeFiles/nifdy_net.dir/net/packet.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/router.cc.o"
  "CMakeFiles/nifdy_net.dir/net/router.cc.o.d"
  "CMakeFiles/nifdy_net.dir/net/topology.cc.o"
  "CMakeFiles/nifdy_net.dir/net/topology.cc.o.d"
  "libnifdy_net.a"
  "libnifdy_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nifdy_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
